//! A signed big integer, used mainly by the extended Euclidean algorithm
//! and for signed polynomial coefficients.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::natural::Natural;

/// Sign of an [`Int`]; zero is always [`Sign::Plus`] with zero magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Non-negative.
    Plus,
    /// Strictly negative.
    Minus,
}

/// An arbitrary-precision signed integer (sign-magnitude representation).
#[derive(Clone, PartialEq, Eq)]
pub struct Int {
    sign: Sign,
    mag: Natural,
}

impl Int {
    /// Zero.
    pub fn zero() -> Self {
        Int {
            sign: Sign::Plus,
            mag: Natural::zero(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Int {
            sign: Sign::Plus,
            mag: Natural::one(),
        }
    }

    /// Constructs from sign and magnitude, canonicalizing `-0` to `+0`.
    pub fn from_parts(sign: Sign, mag: Natural) -> Self {
        if mag.is_zero() {
            Int::zero()
        } else {
            Int { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &Natural {
        &self.mag
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Canonical representative in `[0, modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem_euclid(&self, modulus: &Natural) -> Natural {
        let r = self.mag.rem(modulus);
        match self.sign {
            Sign::Plus => r,
            Sign::Minus if r.is_zero() => r,
            Sign::Minus => modulus - &r,
        }
    }
}

impl From<Natural> for Int {
    fn from(mag: Natural) -> Self {
        Int::from_parts(Sign::Plus, mag)
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Self {
        if v < 0 {
            Int::from_parts(Sign::Minus, Natural::from(v.unsigned_abs()))
        } else {
            Int::from_parts(Sign::Plus, Natural::from(v as u64))
        }
    }
}

impl Neg for Int {
    type Output = Int;
    fn neg(self) -> Int {
        let sign = match self.sign {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        };
        Int::from_parts(sign, self.mag)
    }
}

impl Neg for &Int {
    type Output = Int;
    fn neg(self) -> Int {
        -self.clone()
    }
}

impl Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if self.sign == rhs.sign {
            Int::from_parts(self.sign, &self.mag + &rhs.mag)
        } else {
            match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => Int::zero(),
                Ordering::Greater => Int::from_parts(self.sign, &self.mag - &rhs.mag),
                Ordering::Less => Int::from_parts(rhs.sign, &rhs.mag - &self.mag),
            }
        }
    }
}

impl Add for Int {
    type Output = Int;
    fn add(self, rhs: Int) -> Int {
        &self + &rhs
    }
}

impl Sub for &Int {
    type Output = Int;
    fn sub(self, rhs: &Int) -> Int {
        self + &(-rhs)
    }
}

impl Sub for Int {
    type Output = Int;
    fn sub(self, rhs: Int) -> Int {
        &self - &rhs
    }
}

impl Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        let sign = if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        Int::from_parts(sign, &self.mag * &rhs.mag)
    }
}

impl Mul for Int {
    type Output = Int;
    fn mul(self, rhs: Int) -> Int {
        &self * &rhs
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
        }
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Int({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Int {
        Int::from(v)
    }

    #[test]
    fn construction_canonicalizes_negative_zero() {
        let z = Int::from_parts(Sign::Minus, Natural::zero());
        assert_eq!(z, Int::zero());
        assert_eq!(z.sign(), Sign::Plus);
    }

    #[test]
    fn signed_addition() {
        assert_eq!(&i(5) + &i(-3), i(2));
        assert_eq!(&i(-5) + &i(3), i(-2));
        assert_eq!(&i(-5) + &i(-3), i(-8));
        assert_eq!(&i(5) + &i(-5), Int::zero());
    }

    #[test]
    fn signed_subtraction() {
        assert_eq!(&i(3) - &i(5), i(-2));
        assert_eq!(&i(-3) - &i(-5), i(2));
        assert_eq!(i(0) - i(7), i(-7));
    }

    #[test]
    fn signed_multiplication() {
        assert_eq!(&i(-4) * &i(6), i(-24));
        assert_eq!(&i(-4) * &i(-6), i(24));
        assert_eq!(&i(0) * &i(-6), Int::zero());
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-10) < i(-2));
        assert!(i(-1) < i(0));
        assert!(i(0) < i(1));
        assert!(i(2) < i(10));
    }

    #[test]
    fn rem_euclid_maps_into_range() {
        let m = Natural::from(7u64);
        assert_eq!(i(10).rem_euclid(&m), Natural::from(3u64));
        assert_eq!(i(-10).rem_euclid(&m), Natural::from(4u64));
        assert_eq!(i(-7).rem_euclid(&m), Natural::zero());
        assert_eq!(i(0).rem_euclid(&m), Natural::zero());
    }

    #[test]
    fn display() {
        assert_eq!(i(-42).to_string(), "-42");
        assert_eq!(i(42).to_string(), "42");
        assert_eq!(Int::zero().to_string(), "0");
    }
}
