#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Arbitrary-precision integer arithmetic.
//!
//! This crate is the numeric substrate for every cryptosystem in the
//! `secmed` workspace (ElGamal, SRA commutative encryption, Paillier,
//! Schnorr).  It provides:
//!
//! * [`Natural`] — an unsigned big integer stored as little-endian `u64`
//!   limbs, with schoolbook and Karatsuba multiplication and Knuth
//!   Algorithm D division,
//! * [`Int`] — a signed wrapper used by the extended Euclidean algorithm,
//! * modular arithmetic ([`modular`]) including Montgomery-form windowed
//!   exponentiation,
//! * number theory ([`numtheory`]): gcd, extended gcd, modular inverse,
//!   Jacobi symbol,
//! * probabilistic prime and safe-prime generation ([`prime`]),
//! * uniform random sampling ([`random`]),
//! * the workspace's random-number abstraction ([`rng`]): the [`rng::Rng`]
//!   trait plus OS entropy and a seedable test generator.
//!
//! The implementation favours clarity and reviewability over raw speed and
//! is **not** constant-time; see the workspace DESIGN.md for the threat
//! model (semi-honest parties, as in the paper).
//!
//! # Example
//!
//! ```
//! use mpint::Natural;
//!
//! let a = Natural::from(10_u64).pow(20);              // 10^20
//! let b: Natural = "100000000000000000000".parse().unwrap();
//! assert_eq!(a, b);
//! let (q, r) = a.div_rem(&Natural::from(7_u64));
//! assert_eq!(&q * &Natural::from(7_u64) + r, b);
//! ```

mod convert;
mod div;
mod int;
mod mul;
mod natural;

pub mod modular;
pub mod numtheory;
pub mod prime;
pub mod random;
pub mod rng;

pub use int::{Int, Sign};
pub use modular::Montgomery;
pub use natural::Natural;

/// Error type for fallible conversions and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input string was empty or contained an invalid digit.
    InvalidDigit(char),
    /// An empty string was supplied where a number was expected.
    Empty,
    /// A subtraction would have produced a negative [`Natural`].
    Underflow,
    /// Division or modular reduction by zero.
    DivisionByZero,
    /// No modular inverse exists (operand not coprime to the modulus).
    NotInvertible,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            Error::Empty => write!(f, "empty numeric string"),
            Error::Underflow => write!(f, "subtraction underflowed a Natural"),
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::NotInvertible => write!(f, "operand has no modular inverse"),
        }
    }
}

impl std::error::Error for Error {}
