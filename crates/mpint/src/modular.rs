//! Modular arithmetic: reduction-based helpers and Montgomery-form
//! windowed exponentiation for odd moduli.
//!
//! The cryptosystems in this workspace spend nearly all of their time in
//! [`Natural::modpow`]; the [`Montgomery`] context exists so that repeated
//! exponentiations against the same modulus (the common case: a fixed group
//! or Paillier modulus) avoid a full division per multiplication.  The
//! `benches/mpint.rs` ablation quantifies the speedup.

use crate::natural::Natural;

impl Natural {
    /// `(self + other) mod m`; operands must already be reduced.
    pub fn modadd(&self, other: &Natural, m: &Natural) -> Natural {
        debug_assert!(self < m && other < m);
        let s = self + other;
        if &s >= m {
            s - m
        } else {
            s
        }
    }

    /// `(self - other) mod m`; operands must already be reduced.
    pub fn modsub(&self, other: &Natural, m: &Natural) -> Natural {
        debug_assert!(self < m && other < m);
        if self >= other {
            self - other
        } else {
            m - other + self
        }
    }

    /// `(self * other) mod m`.
    pub fn modmul(&self, other: &Natural, m: &Natural) -> Natural {
        (self * other).rem(m)
    }

    /// `self^exp mod m`.
    ///
    /// Uses Montgomery exponentiation when `m` is odd, falling back to
    /// square-and-multiply with division-based reduction otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or one (no canonical representatives).
    pub fn modpow(&self, exp: &Natural, m: &Natural) -> Natural {
        assert!(!m.is_zero() && !m.is_one(), "modpow modulus must be >= 2");
        if m.is_odd() {
            let ctx = Montgomery::new(m.clone());
            return ctx.modpow(self, exp);
        }
        self.modpow_plain(exp, m)
    }

    /// Square-and-multiply with a division per step.  Kept public for the
    /// Montgomery-vs-plain ablation bench.
    pub fn modpow_plain(&self, exp: &Natural, m: &Natural) -> Natural {
        assert!(!m.is_zero() && !m.is_one(), "modpow modulus must be >= 2");
        let mut base = self.rem(m);
        let mut acc = Natural::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = acc.modmul(&base, m);
            }
            base = base.modmul(&base, m);
        }
        acc
    }
}

/// Precomputed context for Montgomery arithmetic modulo an odd `n`.
///
/// Values in Montgomery form are `a * R mod n` with `R = 2^(64 * limbs)`.
/// Multiplication uses the CIOS (coarsely integrated operand scanning)
/// method, and exponentiation a fixed 4-bit window.
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: Natural,
    /// `-n^{-1} mod 2^64`.
    n_prime: u64,
    /// Limb count of `n`; all Montgomery residues use exactly this length.
    limbs: usize,
    /// `R^2 mod n`, used to convert into Montgomery form.
    r2: Natural,
    /// `R mod n` — the Montgomery representation of one.
    r1: Natural,
}

impl Montgomery {
    /// Creates a context for odd modulus `n >= 3`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or `< 3`.
    pub fn new(n: Natural) -> Self {
        assert!(n.is_odd(), "Montgomery requires an odd modulus");
        assert!(n > Natural::one(), "modulus must be >= 3");
        let limbs = n.limbs().len();
        let n0 = n.limbs()[0];
        // Newton iteration for the inverse of n0 mod 2^64 (5 steps suffice).
        let mut inv = n0; // correct to 3 bits
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        let r1 = Natural::one().shl_bits(64 * limbs as u64).rem(&n);
        let r2 = r1.modmul(&r1, &n);
        Montgomery {
            n,
            n_prime,
            limbs,
            r2,
            r1,
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Natural {
        &self.n
    }

    /// Converts `a` (any size) into Montgomery form.
    pub fn to_mont(&self, a: &Natural) -> Natural {
        self.mont_mul(&a.rem(&self.n), &self.r2)
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &Natural) -> Natural {
        self.mont_mul(a, &Natural::one())
    }

    // CIOS interleaves reads and writes at shifted indices; indexed loops
    // are the canonical presentation of the algorithm.
    #[allow(clippy::needless_range_loop)]
    /// Montgomery product `a * b * R^{-1} mod n` via CIOS.
    pub fn mont_mul(&self, a: &Natural, b: &Natural) -> Natural {
        let k = self.limbs;
        let n = self.n.limbs();
        let a_limbs = a.limbs();
        let b_limbs = b.limbs();
        // t has k+2 limbs: accumulator for the interleaved product/reduction.
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a_limbs.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry = 0u128;
            for j in 0..k {
                let bj = b_limbs.get(j).copied().unwrap_or(0);
                let cur = t[j] as u128 + ai as u128 * bj as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;
            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let mut carry = (t[0] as u128 + m as u128 * n[0] as u128) >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        t.truncate(k + 1);
        let mut r = Natural::from_limbs(t);
        if r >= self.n {
            r -= &self.n;
        }
        r
    }

    /// `base^exp mod n` using a fixed 4-bit window over Montgomery residues.
    pub fn modpow(&self, base: &Natural, exp: &Natural) -> Natural {
        if exp.is_zero() {
            return Natural::one().rem(&self.n);
        }
        let base_m = self.to_mont(base);
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        for i in 1..16 {
            let prev: &Natural = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }
        let bits = exp.bit_len();
        // Process exponent in 4-bit windows, most significant first.
        let windows = bits.div_ceil(4);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let mut nib = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                nib <<= 1;
                if bit_idx < bits && exp.bit(bit_idx) {
                    nib |= 1;
                }
            }
            if nib != 0 {
                acc = self.mont_mul(&acc, &table[nib]);
            }
        }
        self.from_mont(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn modadd_wraps() {
        let m = n(10);
        assert_eq!(n(7).modadd(&n(5), &m), n(2));
        assert_eq!(n(3).modadd(&n(4), &m), n(7));
    }

    #[test]
    fn modsub_wraps() {
        let m = n(10);
        assert_eq!(n(3).modsub(&n(7), &m), n(6));
        assert_eq!(n(7).modsub(&n(3), &m), n(4));
        assert_eq!(n(7).modsub(&n(7), &m), n(0));
    }

    #[test]
    fn modmul() {
        assert_eq!(n(7).modmul(&n(8), &n(10)), n(6));
    }

    #[test]
    fn modpow_small_known() {
        assert_eq!(n(2).modpow(&n(10), &n(1000)), n(24));
        assert_eq!(n(3).modpow(&n(0), &n(7)), n(1));
        assert_eq!(n(0).modpow(&n(5), &n(7)), n(0));
    }

    #[test]
    fn fermat_little_theorem() {
        // p = 1000003 is prime: a^(p-1) = 1 mod p.
        let p = n(1_000_003);
        for a in [2u128, 3, 65537, 999_999] {
            assert_eq!(n(a).modpow(&(&p - &n(1)), &p), n(1), "a={a}");
        }
    }

    #[test]
    fn modpow_even_modulus_falls_back() {
        assert_eq!(n(3).modpow(&n(4), &n(16)), n(81 % 16));
        assert_eq!(n(5).modpow(&n(3), &n(100)), n(25));
    }

    #[test]
    #[should_panic(expected = "must be >= 2")]
    fn modpow_modulus_one_panics() {
        n(3).modpow(&n(4), &n(1));
    }

    #[test]
    fn montgomery_roundtrip() {
        let m = Montgomery::new(n(1_000_003));
        for v in [0u128, 1, 2, 999_999, 1_000_002] {
            let mont = m.to_mont(&n(v));
            assert_eq!(m.from_mont(&mont), n(v), "v={v}");
        }
    }

    #[test]
    fn montgomery_mul_matches_plain() {
        let modulus = n(0xffff_ffff_ffff_ffc5); // large odd 64-bit
        let m = Montgomery::new(modulus.clone());
        let a = n(0x1234_5678_9abc_def0);
        let b = n(0xfedc_ba98_7654_3210);
        let am = m.to_mont(&a);
        let bm = m.to_mont(&b);
        let prod = m.from_mont(&m.mont_mul(&am, &bm));
        assert_eq!(prod, a.modmul(&b, &modulus));
    }

    #[test]
    fn montgomery_modpow_matches_plain_multi_limb() {
        // 128-bit odd modulus spanning two limbs.
        let modulus: Natural = "340282366920938463463374607431768211297".parse().unwrap();
        let base: Natural = "123456789012345678901234567890".parse().unwrap();
        let exp: Natural = "98765432109876543210".parse().unwrap();
        let m = Montgomery::new(modulus.clone());
        assert_eq!(m.modpow(&base, &exp), base.modpow_plain(&exp, &modulus));
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn montgomery_rejects_even() {
        Montgomery::new(n(10));
    }

    #[test]
    fn exponent_one_and_base_bigger_than_modulus() {
        let m = n(97);
        assert_eq!(n(1000).modpow(&n(1), &m), n(1000 % 97));
    }
}
