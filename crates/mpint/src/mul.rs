//! Multiplication: schoolbook for short operands, Karatsuba above a
//! threshold.  The threshold was picked with `benches/mpint.rs` (see the
//! Karatsuba ablation in the bench crate).

use crate::natural::Natural;

/// Limb count above which Karatsuba beats schoolbook on typical x86-64.
pub(crate) const KARATSUBA_THRESHOLD: usize = 32;

pub(crate) fn mul(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() || b.is_zero() {
        return Natural::zero();
    }
    let out = mul_slices(&a.limbs, &b.limbs);
    Natural::from_limbs(out)
}

fn mul_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        schoolbook(a, b)
    } else {
        karatsuba(a, b)
    }
}

/// O(n*m) long multiplication with 128-bit intermediate products.
pub(crate) fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba split: `a = a1*B + a0`, `b = b1*B + b0`,
/// `a*b = a1*b1*B^2 + ((a1+a0)(b1+b0) - a1*b1 - a0*b0)*B + a0*b0`.
pub(crate) fn karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    let split = a.len().max(b.len()) / 2;
    let (a0, a1) = split_at(a, split);
    let (b0, b1) = split_at(b, split);

    let mut z0 = mul_slices(a0, b0);
    let mut z2 = mul_slices(a1, b1);
    let asum = add_slices(a0, a1);
    let bsum = add_slices(b0, b1);
    let mut z1 = mul_slices(&asum, &bsum);
    sub_in_place(&mut z1, &z0);
    sub_in_place(&mut z1, &z2);
    // Trim all-zero high limbs so the shifted accumulations below never
    // index past the output buffer.
    trim(&mut z0);
    trim(&mut z1);
    trim(&mut z2);

    let mut out = vec![0u64; a.len() + b.len() + 1];
    add_at(&mut out, &z0, 0);
    add_at(&mut out, &z1, split);
    add_at(&mut out, &z2, 2 * split);
    // The true product fits in a.len() + b.len() limbs; drop the scratch limb
    // so recursive callers see exact-length operands.
    debug_assert_eq!(out[a.len() + b.len()], 0);
    out.truncate(a.len() + b.len());
    out
}

fn trim(v: &mut Vec<u64>) {
    while v.last() == Some(&0) {
        v.pop();
    }
}

fn split_at(x: &[u64], at: usize) -> (&[u64], &[u64]) {
    if x.len() <= at {
        (x, &[])
    } else {
        x.split_at(at)
    }
}

// Limb kernels below walk two arrays in lockstep; indexed loops are the
// clearest form (clippy would have us zip slices of unequal length).
#[allow(clippy::needless_range_loop)]
fn add_slices(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = long[i].overflowing_add(s);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

#[allow(clippy::needless_range_loop)]
/// `a -= b`; `a` must be at least `b` numerically.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bv = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = a[i].overflowing_sub(bv);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
        if borrow == 0 && i >= b.len() {
            break;
        }
    }
    debug_assert_eq!(borrow, 0, "karatsuba middle term went negative");
}

/// `out[at..] += b` with carry propagation.
fn add_at(out: &mut [u64], b: &[u64], at: usize) {
    let mut carry = 0u64;
    for (i, &bv) in b.iter().enumerate() {
        let (s1, c1) = out[at + i].overflowing_add(bv);
        let (s2, c2) = s1.overflowing_add(carry);
        out[at + i] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut k = at + b.len();
    while carry != 0 {
        let (s, c) = out[k].overflowing_add(carry);
        out[k] = s;
        carry = c as u64;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Natural;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn small_products() {
        assert_eq!(&n(6) * &n(7), n(42));
        assert_eq!(&n(0) * &n(7), n(0));
        assert_eq!(&n(1) * &n(7), n(7));
    }

    #[test]
    fn cross_limb_product() {
        let a = n(u64::MAX as u128);
        assert_eq!(&a * &a, n((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands long enough to force the Karatsuba path.
        let limbs_a: Vec<u64> = (0..80)
            .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))
            .collect();
        let limbs_b: Vec<u64> = (0..75)
            .map(|i| 0xbf58_476d_1ce4_e5b9u64.wrapping_mul(i + 3))
            .collect();
        let a = Natural::from_limbs(limbs_a.clone());
        let b = Natural::from_limbs(limbs_b.clone());
        let fast = &a * &b;
        let slow = Natural::from_limbs(schoolbook(&limbs_a, &limbs_b));
        assert_eq!(fast, slow);
    }

    #[test]
    fn karatsuba_uneven_lengths() {
        let limbs_a: Vec<u64> = (0..100).map(|i| i as u64 + 1).collect();
        let limbs_b: Vec<u64> = vec![u64::MAX; 40];
        let a = Natural::from_limbs(limbs_a.clone());
        let b = Natural::from_limbs(limbs_b.clone());
        assert_eq!(&a * &b, Natural::from_limbs(schoolbook(&limbs_a, &limbs_b)));
        assert_eq!(&b * &a, &a * &b);
    }

    #[test]
    fn decimal_known_product() {
        let a: Natural = "123456789012345678901234567890".parse().unwrap();
        let b: Natural = "987654321098765432109876543210".parse().unwrap();
        let expected = "121932631137021795226185032733622923332237463801111263526900";
        assert_eq!((&a * &b).to_string(), expected);
    }
}
