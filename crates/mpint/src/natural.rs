//! The unsigned big-integer type and its ring operations.

use std::cmp::Ordering;
use std::ops::{Add, AddAssign, BitAnd, Mul, Shl, Shr, Sub, SubAssign};

use crate::Error;

/// An arbitrary-precision unsigned integer.
///
/// Limbs are `u64`, stored little-endian (least significant first) and kept
/// *normalized*: the most significant limb is never zero, and the value zero
/// is represented by an empty limb vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    pub(crate) limbs: Vec<u64>,
}

pub(crate) const LIMB_BITS: u32 = 64;

impl Natural {
    /// The value zero.
    pub const fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Builds a `Natural` from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Read-only view of the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Is this the value zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this the value one?
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Is the least significant bit clear?
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Is the least significant bit set?
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - top.leading_zeros()) as u64
            }
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: u64, value: bool) {
        let limb = (i / LIMB_BITS as u64) as usize;
        let off = (i % LIMB_BITS as u64) as u32;
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1u64 << off;
        } else if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !(1u64 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        let idx = self.limbs.iter().position(|&l| l != 0)?;
        Some(idx as u64 * LIMB_BITS as u64 + self.limbs[idx].trailing_zeros() as u64)
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    // Lockstep limb walk over unequal-length slices; indexed form is clearest.
    #[allow(clippy::needless_range_loop)]
    /// `self + other`.
    pub fn add_ref(&self, other: &Natural) -> Natural {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = long[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Natural::from_limbs(out)
    }

    /// `self - other`, or [`Error::Underflow`] if `other > self`.
    pub fn checked_sub(&self, other: &Natural) -> Result<Natural, Error> {
        if self < other {
            return Err(Error::Underflow);
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Ok(Natural::from_limbs(out))
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: u64) -> Natural {
        if self.is_zero() {
            return Natural::zero();
        }
        if bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        Natural::from_limbs(out)
    }

    /// Right shift by `bits` (floor division by `2^bits`).
    pub fn shr_bits(&self, bits: u64) -> Natural {
        let limb_shift = (bits / LIMB_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return Natural::zero();
        }
        let bit_shift = (bits % LIMB_BITS as u64) as u32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        Natural::from_limbs(out)
    }

    /// `self^exp` by square-and-multiply (plain, not modular).
    pub fn pow(&self, exp: u32) -> Natural {
        let mut base = self.clone();
        let mut exp = exp;
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Returns `self` as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns `self` as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        if v == 0 {
            Natural::zero()
        } else {
            Natural { limbs: vec![v] }
        }
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        self.add_ref(rhs)
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        self.add_ref(&rhs)
    }
}

impl Add<Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        self.add_ref(&rhs)
    }
}

impl Add<&Natural> for Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        self.add_ref(rhs)
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = self.add_ref(rhs);
    }
}

impl Sub for &Natural {
    type Output = Natural;
    /// Panics on underflow; use [`Natural::checked_sub`] for fallible subtraction.
    fn sub(self, rhs: &Natural) -> Natural {
        // lint:allow(panic-freedom) -- documented contract: underflow
        // panics, mirroring primitive `-`; checked_sub is the fallible API.
        self.checked_sub(rhs)
            .expect("Natural subtraction underflow")
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(self, rhs: Natural) -> Natural {
        &self - &rhs
    }
}

impl Sub<&Natural> for Natural {
    type Output = Natural;
    fn sub(self, rhs: &Natural) -> Natural {
        &self - rhs
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = &*self - rhs;
    }
}

impl Mul for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        crate::mul::mul(self, rhs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

impl Mul<&Natural> for Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        &self * rhs
    }
}

impl Mul<Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        self * &rhs
    }
}

impl Shl<u64> for &Natural {
    type Output = Natural;
    fn shl(self, bits: u64) -> Natural {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &Natural {
    type Output = Natural;
    fn shr(self, bits: u64) -> Natural {
        self.shr_bits(bits)
    }
}

impl BitAnd for &Natural {
    type Output = Natural;
    fn bitand(self, rhs: &Natural) -> Natural {
        let n = self.limbs.len().min(rhs.limbs.len());
        let out = (0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect();
        Natural::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(Natural::zero().is_zero());
        assert!(Natural::one().is_one());
        assert!(!Natural::one().is_zero());
        assert_eq!(Natural::zero().bit_len(), 0);
        assert_eq!(Natural::one().bit_len(), 1);
    }

    #[test]
    fn normalization_strips_zero_limbs() {
        let a = Natural::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limbs(), &[5]);
        assert_eq!(a, n(5));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = Natural::from(u64::MAX);
        let b = Natural::one();
        assert_eq!(&a + &b, n(1u128 << 64));
    }

    #[test]
    fn add_asymmetric_lengths() {
        let a = n((1u128 << 100) - 1);
        let b = n(1);
        assert_eq!(&a + &b, n(1u128 << 100));
        assert_eq!(&b + &a, n(1u128 << 100));
    }

    #[test]
    fn sub_with_borrow() {
        let a = n(1u128 << 64);
        let b = n(1);
        assert_eq!(&a - &b, n(u64::MAX as u128));
    }

    #[test]
    fn sub_underflow_is_error() {
        assert_eq!(n(3).checked_sub(&n(5)), Err(Error::Underflow));
        assert_eq!(n(5).checked_sub(&n(5)), Ok(Natural::zero()));
    }

    #[test]
    fn ordering() {
        assert!(n(3) < n(5));
        assert!(n(1u128 << 64) > n(u64::MAX as u128));
        assert_eq!(n(7).cmp(&n(7)), Ordering::Equal);
    }

    #[test]
    fn bit_len_and_bit_access() {
        let a = n(0b1011);
        assert_eq!(a.bit_len(), 4);
        assert!(a.bit(0) && a.bit(1) && !a.bit(2) && a.bit(3));
        assert!(!a.bit(100));
    }

    #[test]
    fn set_bit_roundtrip() {
        let mut a = Natural::zero();
        a.set_bit(127, true);
        assert_eq!(a, n(1u128 << 127));
        a.set_bit(127, false);
        assert!(a.is_zero());
    }

    #[test]
    fn shifts() {
        let a = n(0xdead_beef);
        assert_eq!(a.shl_bits(64).shr_bits(64), a);
        assert_eq!(a.shl_bits(3), n(0xdead_beef << 3));
        assert_eq!(a.shr_bits(100), Natural::zero());
        assert_eq!(n(0).shl_bits(77), Natural::zero());
    }

    #[test]
    fn shift_non_multiple_of_limb() {
        let a = n(0x1_0000_0000_0000_0001);
        assert_eq!(a.shl_bits(13).shr_bits(13), a);
    }

    #[test]
    fn parity() {
        assert!(Natural::zero().is_even());
        assert!(n(7).is_odd());
        assert!(n(8).is_even());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(Natural::zero().trailing_zeros(), None);
        assert_eq!(n(1).trailing_zeros(), Some(0));
        assert_eq!(n(1u128 << 77).trailing_zeros(), Some(77));
    }

    #[test]
    fn pow_small() {
        assert_eq!(n(2).pow(10), n(1024));
        assert_eq!(n(3).pow(0), n(1));
        assert_eq!(n(0).pow(5), n(0));
        assert_eq!(n(10).pow(25).to_string(), "10000000000000000000000000");
    }

    #[test]
    fn conversions() {
        assert_eq!(n(42).to_u64(), Some(42));
        assert_eq!(n(1u128 << 80).to_u64(), None);
        assert_eq!(n(1u128 << 80).to_u128(), Some(1u128 << 80));
    }

    #[test]
    fn bitand() {
        assert_eq!(&n(0b1100) & &n(0b1010), n(0b1000));
        assert_eq!(&n(u64::MAX as u128 + 1) & &n(1), Natural::zero());
    }
}
