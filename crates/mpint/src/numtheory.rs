//! Number-theoretic helpers: gcd, extended gcd, modular inverse, and the
//! Jacobi symbol.

use crate::Error;
use crate::{Int, Natural, Sign};

/// Greatest common divisor (binary GCD).
pub fn gcd(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    // `trailing_zeros` is `None` only for zero, excluded by the guards
    // above (and below: b = 0 exits the loop before the next call).
    let az = a.trailing_zeros().unwrap_or(0);
    let bz = b.trailing_zeros().unwrap_or(0);
    let shift = az.min(bz);
    a = a.shr_bits(az);
    loop {
        let bz = b.trailing_zeros().unwrap_or(0);
        b = b.shr_bits(bz);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b = &b - &a;
        if b.is_zero() {
            return a.shl_bits(shift);
        }
    }
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a*x + b*y = g = gcd(a, b)`.
pub fn extended_gcd(a: &Natural, b: &Natural) -> (Natural, Int, Int) {
    let mut r0 = Int::from(a.clone());
    let mut r1 = Int::from(b.clone());
    let mut s0 = Int::one();
    let mut s1 = Int::zero();
    let mut t0 = Int::zero();
    let mut t1 = Int::one();
    while !r1.is_zero() {
        let (q, r) = r0.magnitude().div_rem(r1.magnitude());
        // Signs: r0, r1 stay non-negative throughout, so plain division works.
        let q = Int::from(q);
        let r = Int::from(r);
        r0 = r1;
        r1 = r;
        let s = &s0 - &(&q * &s1);
        s0 = s1;
        s1 = s;
        let t = &t0 - &(&q * &t1);
        t0 = t1;
        t1 = t;
    }
    (r0.magnitude().clone(), s0, t0)
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) = 1`.
pub fn modinv(a: &Natural, m: &Natural) -> Result<Natural, Error> {
    if m.is_zero() {
        return Err(Error::DivisionByZero);
    }
    let (g, x, _) = extended_gcd(&a.rem(m), m);
    if !g.is_one() {
        return Err(Error::NotInvertible);
    }
    Ok(x.rem_euclid(m))
}

/// Jacobi symbol `(a/n)` for odd positive `n`.
///
/// Returns `0` when `gcd(a, n) != 1`, otherwise `±1`.  For prime `n` this is
/// the Legendre symbol, so `1` means `a` is a quadratic residue mod `n`.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &Natural, n: &Natural) -> i32 {
    assert!(n.is_odd(), "Jacobi symbol requires odd n");
    let mut a = a.rem(n);
    let mut n = n.clone();
    let mut result = 1i32;
    while !a.is_zero() {
        // Pull out factors of two: (2/n) = (-1)^((n^2-1)/8).
        let tz = a.trailing_zeros().unwrap_or(0); // a != 0: loop guard
        a = a.shr_bits(tz);
        if tz % 2 == 1 {
            let n_mod_8 = n.limbs().first().copied().unwrap_or(0) % 8;
            if n_mod_8 == 3 || n_mod_8 == 5 {
                result = -result;
            }
        }
        // Quadratic reciprocity flip.
        let a_mod_4 = a.limbs().first().copied().unwrap_or(0) % 4;
        let n_mod_4 = n.limbs().first().copied().unwrap_or(0) % 4;
        if a_mod_4 == 3 && n_mod_4 == 3 {
            result = -result;
        }
        std::mem::swap(&mut a, &mut n);
        a = a.rem(&n);
    }
    if n.is_one() {
        result
    } else {
        0
    }
}

/// Least common multiple.
pub fn lcm(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() || b.is_zero() {
        return Natural::zero();
    }
    let g = gcd(a, b);
    (a / &g) * b
}

impl std::ops::Div<&Natural> for &Natural {
    type Output = Natural;
    fn div(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).0
    }
}

impl std::ops::Rem<&Natural> for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

/// Re-exported so callers can pattern-match the sign of Bézout coefficients.
pub use crate::int::Sign as BezoutSign;

#[allow(unused)]
fn _sign_used(s: Sign) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&n(12), &n(18)), n(6));
        assert_eq!(gcd(&n(17), &n(5)), n(1));
        assert_eq!(gcd(&n(0), &n(5)), n(5));
        assert_eq!(gcd(&n(5), &n(0)), n(5));
        assert_eq!(gcd(&n(0), &n(0)), n(0));
        assert_eq!(gcd(&n(48), &n(48)), n(48));
    }

    #[test]
    fn gcd_large() {
        let a: Natural = "123456789012345678901234567890".parse().unwrap();
        let b = &a * &n(77);
        assert_eq!(gcd(&a, &b), a);
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240u128, 46), (17, 5), (5, 17), (100, 75), (1, 1)] {
            let (g, x, y) = extended_gcd(&n(a), &n(b));
            let lhs = &(&Int::from(n(a)) * &x) + &(&Int::from(n(b)) * &y);
            assert_eq!(lhs, Int::from(g.clone()), "a={a} b={b}");
            assert_eq!(g, gcd(&n(a), &n(b)));
        }
    }

    #[test]
    fn modinv_small() {
        assert_eq!(modinv(&n(3), &n(7)).unwrap(), n(5));
        assert_eq!(modinv(&n(10), &n(17)).unwrap(), n(12));
        assert_eq!(modinv(&n(2), &n(4)), Err(Error::NotInvertible));
        assert_eq!(modinv(&n(2), &n(0)), Err(Error::DivisionByZero));
    }

    #[test]
    fn modinv_verifies() {
        let m = n(1_000_003);
        for a in [2u128, 3, 65537, 999_999] {
            let inv = modinv(&n(a), &m).unwrap();
            assert_eq!(n(a).modmul(&inv, &m), n(1), "a={a}");
        }
    }

    #[test]
    fn jacobi_legendre_on_prime() {
        // mod 7: QRs are {1, 2, 4}.
        let p = n(7);
        assert_eq!(jacobi(&n(1), &p), 1);
        assert_eq!(jacobi(&n(2), &p), 1);
        assert_eq!(jacobi(&n(3), &p), -1);
        assert_eq!(jacobi(&n(4), &p), 1);
        assert_eq!(jacobi(&n(5), &p), -1);
        assert_eq!(jacobi(&n(6), &p), -1);
        assert_eq!(jacobi(&n(0), &p), 0);
        assert_eq!(jacobi(&n(7), &p), 0);
    }

    #[test]
    fn jacobi_composite() {
        // (2/15) = (2/3)(2/5) = (-1)(-1) = 1
        assert_eq!(jacobi(&n(2), &n(15)), 1);
        // (3/15): gcd != 1 -> 0
        assert_eq!(jacobi(&n(3), &n(15)), 0);
    }

    #[test]
    #[should_panic(expected = "odd n")]
    fn jacobi_even_panics() {
        jacobi(&n(3), &n(8));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&n(4), &n(6)), n(12));
        assert_eq!(lcm(&n(0), &n(6)), n(0));
        assert_eq!(lcm(&n(7), &n(13)), n(91));
    }

    #[test]
    fn quadratic_residues_match_squares() {
        let p = n(101);
        let mut squares = std::collections::HashSet::new();
        for a in 1..101u128 {
            squares.insert((a * a % 101) as u64);
        }
        for a in 1..101u128 {
            let expected = if squares.contains(&(a as u64)) { 1 } else { -1 };
            assert_eq!(jacobi(&n(a), &p), expected, "a={a}");
        }
    }
}
