//! Probabilistic primality testing (Miller–Rabin) and generation of random
//! primes and safe primes.
//!
//! Safe primes `p = 2q + 1` (with `q` prime) are the group parameters for
//! the SRA commutative encryption and the ElGamal KEM: the subgroup of
//! quadratic residues mod `p` then has prime order `q`.

use crate::random::{random_below, random_bits};
use crate::rng::Rng;
use crate::Natural;

/// Small primes used for trial division before Miller–Rabin.
fn small_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static SIEVE: OnceLock<Vec<u64>> = OnceLock::new();
    SIEVE.get_or_init(|| {
        const LIMIT: usize = 8192;
        let mut composite = vec![false; LIMIT];
        let mut primes = Vec::new();
        for i in 2..LIMIT {
            if !composite[i] {
                primes.push(i as u64);
                let mut j = i * i;
                while j < LIMIT {
                    composite[j] = true;
                    j += i;
                }
            }
        }
        primes
    })
}

/// Returns `true` if `n` is divisible by a small prime strictly below itself.
fn has_small_factor(n: &Natural) -> bool {
    for &p in small_primes() {
        let pn = Natural::from(p);
        if &pn >= n {
            return false;
        }
        if n.rem(&pn).is_zero() {
            return true;
        }
    }
    false
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
///
/// A composite passes with probability at most `4^-rounds`; 40 rounds is
/// the conventional choice for cryptographic parameters.
pub fn is_probable_prime(n: &Natural, rounds: u32, rng: &mut dyn Rng) -> bool {
    if n < &Natural::from(2u64) {
        return false;
    }
    let two = Natural::from(2u64);
    let three = Natural::from(3u64);
    if n == &two || n == &three {
        return true;
    }
    if n.is_even() {
        return false;
    }
    if has_small_factor(n) {
        return false;
    }
    // Write n - 1 = d * 2^s with d odd.
    let n_minus_1 = n - &Natural::one();
    let s = n_minus_1.trailing_zeros().unwrap_or(0); // n > 3 here, so n - 1 > 0
    let d = n_minus_1.shr_bits(s);
    let mont = crate::Montgomery::new(n.clone());

    'witness: for _ in 0..rounds {
        // Base in [2, n - 2].
        let a = random_below(rng, &(n - &three)) + &two;
        let mut x = mont.modpow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = x.modmul(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime(bits: u64, rng: &mut dyn Rng) -> Natural {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, 40, rng) {
            return candidate;
        }
    }
}

/// Generates a safe prime `p = 2q + 1` with exactly `bits` bits; returns
/// `(p, q)`.
///
/// Both halves are screened with trial division and a cheap 1-round
/// Miller–Rabin before the full 40-round certification, so most candidates
/// die cheaply.
///
/// # Panics
///
/// Panics if `bits < 4`.
pub fn gen_safe_prime(bits: u64, rng: &mut dyn Rng) -> (Natural, Natural) {
    assert!(bits >= 4, "safe primes need at least 4 bits");
    let one = Natural::one();
    let three = Natural::from(3u64);
    loop {
        let mut q = random_bits(rng, bits - 1);
        q.set_bit(0, true);
        // p = 2q + 1 is divisible by 3 iff q = 1 mod 3; skip those early
        // (q = 3 itself is fine: p = 7).
        if q != three && q.rem(&three).is_one() {
            continue;
        }
        let p = q.shl_bits(1) + &one;
        if has_small_factor(&q) || has_small_factor(&p) {
            continue;
        }
        if !is_probable_prime(&q, 1, rng) || !is_probable_prime(&p, 1, rng) {
            continue;
        }
        if is_probable_prime(&q, 40, rng) && is_probable_prime(&p, 40, rng) {
            return (p, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(7)
    }

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u128, 3, 5, 7, 11, 13, 8191, 1_000_003] {
            assert!(is_probable_prime(&n(p), 20, &mut r), "p={p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u128, 1, 4, 6, 9, 15, 8192, 1_000_001, 561, 41041] {
            // 561 and 41041 are Carmichael numbers.
            assert!(!is_probable_prime(&n(c), 20, &mut r), "c={c}");
        }
    }

    #[test]
    fn large_known_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let mut r = rng();
        let p = Natural::one().shl_bits(127) - Natural::one();
        assert!(is_probable_prime(&p, 20, &mut r));
        // 2^128 - 1 = 3 * 5 * 17 * ... is not.
        let c = Natural::one().shl_bits(128) - Natural::one();
        assert!(!is_probable_prime(&c, 20, &mut r));
    }

    #[test]
    fn product_of_two_primes_rejected() {
        let mut r = rng();
        let p = gen_prime(48, &mut r);
        let q = gen_prime(48, &mut r);
        assert!(!is_probable_prime(&(&p * &q), 20, &mut r));
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut r = rng();
        for bits in [16u64, 32, 64, 128] {
            let p = gen_prime(bits, &mut r);
            assert_eq!(p.bit_len(), bits);
            assert!(is_probable_prime(&p, 20, &mut r));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut r = rng();
        let (p, q) = gen_safe_prime(64, &mut r);
        assert_eq!(p.bit_len(), 64);
        assert_eq!(p, q.shl_bits(1) + Natural::one());
        assert!(is_probable_prime(&p, 20, &mut r));
        assert!(is_probable_prime(&q, 20, &mut r));
    }

    #[test]
    fn safe_prime_group_order() {
        // Every quadratic residue g satisfies g^q = 1 mod p.
        let mut r = rng();
        let (p, q) = gen_safe_prime(48, &mut r);
        let x = random_below(&mut r, &p);
        let g = x.modmul(&x, &p);
        if !g.is_zero() {
            assert!(g.modpow(&q, &p).is_one());
        }
    }
}
