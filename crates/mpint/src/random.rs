//! Uniform random sampling of big integers from any [`crate::rng::Rng`].

use crate::rng::Rng;

use crate::Natural;

/// A uniformly random integer with exactly `bits` significant bits
/// (the top bit is forced to one).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn random_bits(rng: &mut dyn Rng, bits: u64) -> Natural {
    assert!(bits > 0, "cannot sample zero bits");
    let limbs = bits.div_ceil(64) as usize;
    let mut out = vec![0u64; limbs];
    for l in out.iter_mut() {
        *l = rng.next_u64();
    }
    // Mask off excess bits, then force the top bit.
    let top_bits = ((bits - 1) % 64 + 1) as u32;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    out[limbs - 1] &= mask;
    out[limbs - 1] |= 1u64 << (top_bits - 1);
    Natural::from_limbs(out)
}

/// A uniformly random integer in `[0, bound)` by rejection sampling.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below(rng: &mut dyn Rng, bound: &Natural) -> Natural {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bit_len();
    let limbs = bits.div_ceil(64) as usize;
    let top_bits = ((bits - 1) % 64 + 1) as u32;
    let mask = if top_bits == 64 {
        u64::MAX
    } else {
        (1u64 << top_bits) - 1
    };
    loop {
        let mut out = vec![0u64; limbs];
        for l in out.iter_mut() {
            *l = rng.next_u64();
        }
        out[limbs - 1] &= mask;
        let candidate = Natural::from_limbs(out);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// A uniformly random integer in `[low, high)`.
///
/// # Panics
///
/// Panics if `low >= high`.
pub fn random_range(rng: &mut dyn Rng, low: &Natural, high: &Natural) -> Natural {
    assert!(low < high, "empty sampling range");
    let width = high - low;
    low + random_below(rng, &width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn rng() -> SplitMix64 {
        SplitMix64::seed_from_u64(0x5ec4ed)
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut r = rng();
        for bits in [1u64, 2, 63, 64, 65, 127, 128, 512] {
            let v = random_bits(&mut r, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = Natural::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        let mut r = rng();
        let bound = Natural::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[random_below(&mut r, &bound).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues sampled: {seen:?}");
    }

    #[test]
    fn random_range_bounds() {
        let mut r = rng();
        let low = Natural::from(10u64);
        let high = Natural::from(20u64);
        for _ in 0..100 {
            let v = random_range(&mut r, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn random_below_zero_bound_panics() {
        random_below(&mut rng(), &Natural::zero());
    }
}
