//! The workspace's random-number abstraction.
//!
//! The crates in this workspace are built offline and self-contained, so
//! instead of the `rand` ecosystem this module defines the one trait the
//! cryptosystems need — [`Rng`] — together with two in-tree sources:
//!
//! * [`OsRng`] — operating-system entropy read from `/dev/urandom`,
//!   used only to seed deterministic generators,
//! * [`SplitMix64`] — a tiny, fast, seedable generator for tests and
//!   non-cryptographic sampling.
//!
//! The cryptographic generator (HMAC-DRBG) lives in `secmed-crypto` and
//! implements [`Rng`]; protocol code only ever sees the trait.

use std::fs::File;
use std::io::Read;

/// A source of random bytes.
///
/// `fill_bytes` is the only required method; the integer helpers derive
/// from it with a fixed little-endian convention so every implementation
/// produces identical integer streams from identical byte streams.
pub trait Rng {
    /// Fills `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);

    /// The next random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// The next random `u32`.
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Operating-system entropy (`/dev/urandom`).
///
/// Intended for *seeding* only: parties instantiate a DRBG from it once
/// and draw everything else deterministically, which keeps protocol runs
/// reproducible when seeded from a label instead.
///
/// # Panics
///
/// Panics if `/dev/urandom` cannot be opened or read — a machine without
/// an entropy device cannot run the cryptosystems safely, so this is not
/// a recoverable condition.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsRng;

impl Rng for OsRng {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        // lint:allow(panic-freedom) -- documented contract: a machine
        // without an entropy device cannot run the cryptosystems safely,
        // so failing to open /dev/urandom is unrecoverable by design.
        let mut f = File::open("/dev/urandom").expect("open /dev/urandom");
        // lint:allow(panic-freedom) -- same documented contract as above.
        f.read_exact(dst).expect("read OS entropy");
    }
}

/// SplitMix64 (Steele, Lea & Flood): a seedable 64-bit generator with
/// full-period state transition.  Statistically solid, deliberately *not*
/// cryptographic — use it for test-case generation and sampling where a
/// fixed seed must reproduce the exact same sequence forever.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn step(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fill_bytes_matches_next_u64_prefix() {
        // The little-endian derivation makes byte and integer draws agree.
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        assert_eq!(u64::from_le_bytes(buf), b.next_u64());
    }

    #[test]
    fn os_rng_produces_distinct_draws() {
        let mut r = OsRng;
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn trait_object_and_reborrow_work() {
        let mut r = SplitMix64::seed_from_u64(3);
        fn take(rng: &mut dyn Rng) -> u64 {
            rng.next_u64()
        }
        let _ = take(&mut r);
        let by_ref: &mut SplitMix64 = &mut r;
        let _ = take(by_ref);
    }
}
