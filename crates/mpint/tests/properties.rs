//! Property-based tests for the big-integer substrate: ring laws checked
//! against `u128` reference arithmetic and against internal consistency on
//! operands far beyond 128 bits.

use mpint::{numtheory, Natural};
use proptest::prelude::*;

/// Strategy: an arbitrary Natural up to ~6 limbs, built from raw limbs.
fn natural() -> impl Strategy<Value = Natural> {
    prop::collection::vec(any::<u64>(), 0..6).prop_map(Natural::from_limbs)
}

/// Strategy: a non-zero Natural.
fn natural_nonzero() -> impl Strategy<Value = Natural> {
    natural().prop_filter("non-zero", |n| !n.is_zero())
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = Natural::from(a) + Natural::from(b);
        prop_assert_eq!(sum, Natural::from(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = Natural::from(a) * Natural::from(b);
        prop_assert_eq!(prod, Natural::from(a as u128 * b as u128));
    }

    #[test]
    fn div_matches_u128(a in any::<u128>(), b in 1..=u64::MAX) {
        let (q, r) = Natural::from(a).div_rem(&Natural::from(b));
        prop_assert_eq!(q, Natural::from(a / b as u128));
        prop_assert_eq!(r, Natural::from(a % b as u128));
    }

    #[test]
    fn add_commutative(a in natural(), b in natural()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in natural(), b in natural(), c in natural()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in natural(), b in natural()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in natural(), b in natural(), c in natural()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in natural(), b in natural()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in natural(), b in natural_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&q * &b + &r, a);
    }

    #[test]
    fn shifts_are_mul_div_by_powers_of_two(a in natural(), s in 0u64..200) {
        let two_s = Natural::one().shl_bits(s);
        prop_assert_eq!(a.shl_bits(s), &a * &two_s);
        prop_assert_eq!(a.shr_bits(s), a.div_rem(&two_s).0);
    }

    #[test]
    fn decimal_roundtrip(a in natural()) {
        let s = a.to_decimal();
        prop_assert_eq!(Natural::from_decimal(&s).unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in natural()) {
        let s = a.to_hex();
        prop_assert_eq!(Natural::from_hex(&s).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in natural()) {
        prop_assert_eq!(Natural::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn bit_len_bounds(a in natural_nonzero()) {
        let bits = a.bit_len();
        prop_assert!(Natural::one().shl_bits(bits - 1) <= a);
        prop_assert!(a < Natural::one().shl_bits(bits));
    }

    #[test]
    fn gcd_divides_both(a in natural_nonzero(), b in natural_nonzero()) {
        let g = numtheory::gcd(&a, &b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn gcd_matches_u128(a in 1..=u128::MAX, b in 1..=u128::MAX) {
        fn ref_gcd(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let g = numtheory::gcd(&Natural::from(a), &Natural::from(b));
        prop_assert_eq!(g, Natural::from(ref_gcd(a, b)));
    }

    #[test]
    fn extended_gcd_is_bezout(a in natural_nonzero(), b in natural_nonzero()) {
        use mpint::Int;
        let (g, x, y) = numtheory::extended_gcd(&a, &b);
        let lhs = &(&Int::from(a) * &x) + &(&Int::from(b) * &y);
        prop_assert_eq!(lhs, Int::from(g));
    }

    #[test]
    fn modinv_is_inverse(a in natural_nonzero(), m in natural()) {
        // Pick an odd modulus >= 3 so inverses usually exist.
        let m = &(&m * &Natural::from(2u64)) + &Natural::from(3u64);
        if let Ok(inv) = numtheory::modinv(&a, &m) {
            prop_assert_eq!(a.rem(&m).modmul(&inv, &m), Natural::one().rem(&m));
        }
    }

    #[test]
    fn modpow_matches_plain(a in natural(), e in any::<u32>(), m in natural_nonzero()) {
        // Force the modulus odd so the Montgomery path is taken.
        let m = if m.is_even() { m + Natural::one() } else { m };
        prop_assume!(!m.is_one());
        let e = Natural::from(e as u64);
        prop_assert_eq!(a.modpow(&e, &m), a.modpow_plain(&e, &m));
    }

    #[test]
    fn modpow_respects_exponent_addition(a in natural(), e1 in any::<u16>(), e2 in any::<u16>(), m in natural_nonzero()) {
        let m = if m.is_even() { m + Natural::one() } else { m };
        prop_assume!(!m.is_one());
        let p1 = a.modpow(&Natural::from(e1 as u64), &m);
        let p2 = a.modpow(&Natural::from(e2 as u64), &m);
        let sum = a.modpow(&Natural::from(e1 as u64 + e2 as u64), &m);
        prop_assert_eq!(p1.modmul(&p2, &m), sum);
    }

    #[test]
    fn jacobi_is_multiplicative(a in 1..10_000u64, b in 1..10_000u64, n in 0..5_000u64) {
        let n = Natural::from(2 * n + 3); // odd, >= 3
        let ja = numtheory::jacobi(&Natural::from(a), &n);
        let jb = numtheory::jacobi(&Natural::from(b), &n);
        let jab = numtheory::jacobi(&Natural::from(a as u128 * b as u128), &n);
        prop_assert_eq!(jab, ja * jb);
    }

    #[test]
    fn montgomery_matches_plain_on_random_odd_moduli(
        a in any::<u128>(),
        b in any::<u128>(),
        m in 1u128..,
    ) {
        use mpint::Montgomery;
        let m = Natural::from(m | 1); // force odd
        prop_assume!(!m.is_one());
        let ctx = Montgomery::new(m.clone());
        let am = ctx.to_mont(&Natural::from(a));
        let bm = ctx.to_mont(&Natural::from(b));
        let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        prop_assert_eq!(prod, Natural::from(a).modmul(&Natural::from(b), &m));
    }

    #[test]
    fn prime_generation_sizes_hold(bits in 8u64..40, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = mpint::prime::gen_prime(bits, &mut rng);
        prop_assert_eq!(p.bit_len(), bits);
    }

    #[test]
    fn int_rem_euclid_in_range(v in any::<i64>(), m in 1..=u64::MAX) {
        use mpint::Int;
        let m = Natural::from(m);
        let r = Int::from(v).rem_euclid(&m);
        prop_assert!(r < m);
    }
}
