//! Property-based tests for the big-integer substrate: ring laws checked
//! against `u128` reference arithmetic and against internal consistency on
//! operands far beyond 128 bits.

use mpint::{numtheory, Natural};
use secmed_testkit::{cases, Gen, DEFAULT_CASES};

/// An arbitrary Natural up to ~6 limbs, built from raw limbs.
fn natural(g: &mut Gen) -> Natural {
    let limbs = g.usize_in(0, 5);
    Natural::from_limbs(g.vec_of(limbs, |g| g.u64()))
}

/// A non-zero Natural.
fn natural_nonzero(g: &mut Gen) -> Natural {
    loop {
        let n = natural(g);
        if !n.is_zero() {
            return n;
        }
    }
}

/// A uniform `u128`.
fn u128_any(g: &mut Gen) -> u128 {
    ((g.u64() as u128) << 64) | g.u64() as u128
}

#[test]
fn add_matches_u128() {
    cases(DEFAULT_CASES, "add_matches_u128", |g| {
        let (a, b) = (g.u64(), g.u64());
        let sum = Natural::from(a) + Natural::from(b);
        assert_eq!(sum, Natural::from(a as u128 + b as u128));
    });
}

#[test]
fn mul_matches_u128() {
    cases(DEFAULT_CASES, "mul_matches_u128", |g| {
        let (a, b) = (g.u64(), g.u64());
        let prod = Natural::from(a) * Natural::from(b);
        assert_eq!(prod, Natural::from(a as u128 * b as u128));
    });
}

#[test]
fn div_matches_u128() {
    cases(DEFAULT_CASES, "div_matches_u128", |g| {
        let a = u128_any(g);
        let b = 1 + g.u64_below(u64::MAX);
        let (q, r) = Natural::from(a).div_rem(&Natural::from(b));
        assert_eq!(q, Natural::from(a / b as u128));
        assert_eq!(r, Natural::from(a % b as u128));
    });
}

#[test]
fn add_commutative() {
    cases(DEFAULT_CASES, "add_commutative", |g| {
        let (a, b) = (natural(g), natural(g));
        assert_eq!(&a + &b, &b + &a);
    });
}

#[test]
fn add_associative() {
    cases(DEFAULT_CASES, "add_associative", |g| {
        let (a, b, c) = (natural(g), natural(g), natural(g));
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    });
}

#[test]
fn mul_commutative() {
    cases(DEFAULT_CASES, "mul_commutative", |g| {
        let (a, b) = (natural(g), natural(g));
        assert_eq!(&a * &b, &b * &a);
    });
}

#[test]
fn mul_distributes_over_add() {
    cases(DEFAULT_CASES, "mul_distributes_over_add", |g| {
        let (a, b, c) = (natural(g), natural(g), natural(g));
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    });
}

#[test]
fn sub_inverts_add() {
    cases(DEFAULT_CASES, "sub_inverts_add", |g| {
        let (a, b) = (natural(g), natural(g));
        assert_eq!(&(&a + &b) - &b, a);
    });
}

#[test]
fn div_rem_reconstructs() {
    cases(DEFAULT_CASES, "div_rem_reconstructs", |g| {
        let (a, b) = (natural(g), natural_nonzero(g));
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&q * &b + &r, a);
    });
}

#[test]
fn shifts_are_mul_div_by_powers_of_two() {
    cases(DEFAULT_CASES, "shifts_are_mul_div_by_powers_of_two", |g| {
        let a = natural(g);
        let s = g.u64_below(200);
        let two_s = Natural::one().shl_bits(s);
        assert_eq!(a.shl_bits(s), &a * &two_s);
        assert_eq!(a.shr_bits(s), a.div_rem(&two_s).0);
    });
}

#[test]
fn decimal_roundtrip() {
    cases(DEFAULT_CASES, "decimal_roundtrip", |g| {
        let a = natural(g);
        let s = a.to_decimal();
        assert_eq!(Natural::from_decimal(&s).unwrap(), a);
    });
}

#[test]
fn hex_roundtrip() {
    cases(DEFAULT_CASES, "hex_roundtrip", |g| {
        let a = natural(g);
        let s = a.to_hex();
        assert_eq!(Natural::from_hex(&s).unwrap(), a);
    });
}

#[test]
fn bytes_roundtrip() {
    cases(DEFAULT_CASES, "bytes_roundtrip", |g| {
        let a = natural(g);
        assert_eq!(Natural::from_bytes_be(&a.to_bytes_be()), a);
    });
}

#[test]
fn bit_len_bounds() {
    cases(DEFAULT_CASES, "bit_len_bounds", |g| {
        let a = natural_nonzero(g);
        let bits = a.bit_len();
        assert!(Natural::one().shl_bits(bits - 1) <= a);
        assert!(a < Natural::one().shl_bits(bits));
    });
}

#[test]
fn gcd_divides_both() {
    cases(DEFAULT_CASES, "gcd_divides_both", |g| {
        let (a, b) = (natural_nonzero(g), natural_nonzero(g));
        let gg = numtheory::gcd(&a, &b);
        assert!(a.rem(&gg).is_zero());
        assert!(b.rem(&gg).is_zero());
    });
}

#[test]
fn gcd_matches_u128() {
    fn ref_gcd(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    cases(DEFAULT_CASES, "gcd_matches_u128", |g| {
        let a = u128_any(g).max(1);
        let b = u128_any(g).max(1);
        let gg = numtheory::gcd(&Natural::from(a), &Natural::from(b));
        assert_eq!(gg, Natural::from(ref_gcd(a, b)));
    });
}

#[test]
fn extended_gcd_is_bezout() {
    cases(DEFAULT_CASES, "extended_gcd_is_bezout", |g| {
        use mpint::Int;
        let (a, b) = (natural_nonzero(g), natural_nonzero(g));
        let (gg, x, y) = numtheory::extended_gcd(&a, &b);
        let lhs = &(&Int::from(a) * &x) + &(&Int::from(b) * &y);
        assert_eq!(lhs, Int::from(gg));
    });
}

#[test]
fn modinv_is_inverse() {
    cases(DEFAULT_CASES, "modinv_is_inverse", |g| {
        let a = natural_nonzero(g);
        let m = natural(g);
        // Pick an odd modulus >= 3 so inverses usually exist.
        let m = &(&m * &Natural::from(2u64)) + &Natural::from(3u64);
        if let Ok(inv) = numtheory::modinv(&a, &m) {
            assert_eq!(a.rem(&m).modmul(&inv, &m), Natural::one().rem(&m));
        }
    });
}

#[test]
fn modpow_matches_plain() {
    cases(DEFAULT_CASES, "modpow_matches_plain", |g| {
        let a = natural(g);
        let e = g.u32();
        let m = natural_nonzero(g);
        // Force the modulus odd so the Montgomery path is taken.
        let m = if m.is_even() { m + Natural::one() } else { m };
        if m.is_one() {
            return;
        }
        let e = Natural::from(e as u64);
        assert_eq!(a.modpow(&e, &m), a.modpow_plain(&e, &m));
    });
}

#[test]
fn modpow_respects_exponent_addition() {
    cases(DEFAULT_CASES, "modpow_respects_exponent_addition", |g| {
        let a = natural(g);
        let e1 = g.u32() as u16;
        let e2 = g.u32() as u16;
        let m = natural_nonzero(g);
        let m = if m.is_even() { m + Natural::one() } else { m };
        if m.is_one() {
            return;
        }
        let p1 = a.modpow(&Natural::from(e1 as u64), &m);
        let p2 = a.modpow(&Natural::from(e2 as u64), &m);
        let sum = a.modpow(&Natural::from(e1 as u64 + e2 as u64), &m);
        assert_eq!(p1.modmul(&p2, &m), sum);
    });
}

#[test]
fn jacobi_is_multiplicative() {
    cases(DEFAULT_CASES, "jacobi_is_multiplicative", |g| {
        let a = 1 + g.u64_below(9_999);
        let b = 1 + g.u64_below(9_999);
        let n = Natural::from(2 * g.u64_below(5_000) + 3); // odd, >= 3
        let ja = numtheory::jacobi(&Natural::from(a), &n);
        let jb = numtheory::jacobi(&Natural::from(b), &n);
        let jab = numtheory::jacobi(&Natural::from(a as u128 * b as u128), &n);
        assert_eq!(jab, ja * jb);
    });
}

#[test]
fn montgomery_matches_plain_on_random_odd_moduli() {
    cases(
        DEFAULT_CASES,
        "montgomery_matches_plain_on_random_odd_moduli",
        |g| {
            use mpint::Montgomery;
            let a = u128_any(g);
            let b = u128_any(g);
            let m = Natural::from(u128_any(g).max(1) | 1); // force odd
            if m.is_one() {
                return;
            }
            let ctx = Montgomery::new(m.clone());
            let am = ctx.to_mont(&Natural::from(a));
            let bm = ctx.to_mont(&Natural::from(b));
            let prod = ctx.from_mont(&ctx.mont_mul(&am, &bm));
            assert_eq!(prod, Natural::from(a).modmul(&Natural::from(b), &m));
        },
    );
}

#[test]
fn prime_generation_sizes_hold() {
    cases(DEFAULT_CASES, "prime_generation_sizes_hold", |g| {
        let bits = 8 + g.u64_below(32);
        let p = mpint::prime::gen_prime(bits, g.rng());
        assert_eq!(p.bit_len(), bits);
    });
}

#[test]
fn int_rem_euclid_in_range() {
    cases(DEFAULT_CASES, "int_rem_euclid_in_range", |g| {
        use mpint::Int;
        let v = g.i64();
        let m = Natural::from(1 + g.u64_below(u64::MAX));
        let r = Int::from(v).rem_euclid(&m);
        assert!(r < m);
    });
}
