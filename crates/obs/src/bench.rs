//! In-tree micro-benchmark harness.
//!
//! A small, dependency-free replacement for an external benchmark
//! framework: warmup, batch-size calibration (so per-sample timing swamps
//! timer overhead even for nanosecond-scale operations), a fixed number of
//! timed samples, and summary statistics (mean, median, standard deviation,
//! min, max, optional throughput).
//!
//! Benches are ordinary binaries (`harness = false`): build a [`Bench`]
//! per measurement, `run` it with a closure, and print the returned
//! [`BenchResult`] rows through a [`Suite`] for aligned output.
//!
//! Results intentionally report per-iteration wall-clock time only; this is
//! a comparative harness for the paper's tables, not a statistical
//! confidence apparatus.

use std::time::{Duration, Instant};

use crate::json::Json;
use crate::report::format_ns;

/// Re-export of the compiler optimization barrier used by benches.
pub use std::hint::black_box;

/// Configuration for one measurement.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Label shown in reports.
    pub name: String,
    /// Minimum time spent warming up before calibration.
    pub warmup: Duration,
    /// Number of timed samples to collect.
    pub samples: usize,
    /// Minimum wall-clock duration of one sample; the batch size (iterations
    /// per sample) is calibrated so a sample takes at least this long.
    pub min_sample: Duration,
    /// When set, results additionally report bytes/second computed from
    /// this many bytes processed per iteration.
    pub throughput_bytes: Option<u64>,
}

impl Bench {
    /// A measurement with the defaults: 100 ms warmup, 20 samples of at
    /// least 1 ms each.
    pub fn new(name: impl Into<String>) -> Self {
        Bench {
            name: name.into(),
            warmup: Duration::from_millis(100),
            samples: 20,
            min_sample: Duration::from_millis(1),
            throughput_bytes: None,
        }
    }

    /// Sets the number of timed samples.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Sets the warmup duration.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the minimum per-sample duration.
    pub fn min_sample(mut self, d: Duration) -> Self {
        self.min_sample = d;
        self
    }

    /// Declares the number of bytes processed per iteration, enabling
    /// throughput reporting.
    pub fn throughput_bytes(mut self, bytes: u64) -> Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    /// Runs the measurement: warmup, calibration, then timed samples.
    ///
    /// `f` is the operation under test; wrap inputs and outputs in
    /// [`black_box`] to keep the optimizer honest.
    pub fn run(self, mut f: impl FnMut()) -> BenchResult {
        // Warmup: run until the warmup budget elapses (at least once), and
        // remember the slowest-warmed single-iteration estimate for
        // calibration.
        let warm_start = Instant::now();
        let mut iters_warm: u64 = 0;
        loop {
            f();
            iters_warm += 1;
            if warm_start.elapsed() >= self.warmup {
                break;
            }
        }
        let per_iter_estimate = warm_start.elapsed().as_nanos() as u64 / iters_warm.max(1);

        // Calibration: batch enough iterations that one sample meets
        // `min_sample`, so Instant overhead stays in the noise.
        let min_sample_ns = self.min_sample.as_nanos() as u64;
        let batch = (min_sample_ns / per_iter_estimate.max(1)).clamp(1, 1 << 24);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / batch as f64);
        }

        BenchResult::from_samples(self.name, batch, samples_ns, self.throughput_bytes)
    }
}

/// Summary statistics for one measurement; all times are per-iteration
/// nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Measurement label.
    pub name: String,
    /// Iterations per timed sample (calibrated).
    pub batch: u64,
    /// Raw per-iteration sample values.
    pub samples_ns: Vec<f64>,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (average of middle two for even counts).
    pub median_ns: f64,
    /// Population standard deviation.
    pub stddev_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Bytes processed per iteration, when declared.
    pub throughput_bytes: Option<u64>,
}

impl BenchResult {
    /// Computes summary statistics from raw samples.
    pub fn from_samples(
        name: String,
        batch: u64,
        samples_ns: Vec<f64>,
        throughput_bytes: Option<u64>,
    ) -> Self {
        assert!(!samples_ns.is_empty(), "no samples");
        let n = samples_ns.len() as f64;
        let mean = samples_ns.iter().sum::<f64>() / n;
        let var = samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let mut sorted = samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        BenchResult {
            name,
            batch,
            mean_ns: mean,
            median_ns: median,
            stddev_ns: var.sqrt(),
            min_ns: sorted[0],
            max_ns: *sorted.last().unwrap(),
            samples_ns,
            throughput_bytes,
        }
    }

    /// Mean throughput in bytes/second, when bytes-per-iteration was
    /// declared and the mean is non-zero.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        let bytes = self.throughput_bytes?;
        if self.mean_ns <= 0.0 {
            return None;
        }
        Some(bytes as f64 * 1e9 / self.mean_ns)
    }

    /// One human-readable result line.
    pub fn render_row(&self) -> String {
        let mut row = format!(
            "{:<40} {:>12}  ±{:>10}  med {:>12}  [{} .. {}]",
            self.name,
            format_ns(self.mean_ns as u64),
            format_ns(self.stddev_ns as u64),
            format_ns(self.median_ns as u64),
            format_ns(self.min_ns as u64),
            format_ns(self.max_ns as u64),
        );
        if let Some(tput) = self.bytes_per_sec() {
            row.push_str(&format!("  {}", format_throughput(tput)));
        }
        row
    }

    /// The result as a JSON object (for machine-readable bench logs).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("batch".to_string(), Json::UInt(self.batch)),
            (
                "samples".to_string(),
                Json::UInt(self.samples_ns.len() as u64),
            ),
            ("mean_ns".to_string(), Json::Float(self.mean_ns)),
            ("median_ns".to_string(), Json::Float(self.median_ns)),
            ("stddev_ns".to_string(), Json::Float(self.stddev_ns)),
            ("min_ns".to_string(), Json::Float(self.min_ns)),
            ("max_ns".to_string(), Json::Float(self.max_ns)),
        ];
        if let Some(b) = self.throughput_bytes {
            pairs.push(("bytes_per_iter".to_string(), Json::UInt(b)));
            if let Some(t) = self.bytes_per_sec() {
                pairs.push(("bytes_per_sec".to_string(), Json::Float(t)));
            }
        }
        Json::Object(pairs)
    }
}

/// Formats bytes/second with an adaptive unit.
pub fn format_throughput(bytes_per_sec: f64) -> String {
    const KIB: f64 = 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    if bytes_per_sec >= GIB {
        format!("{:.2} GiB/s", bytes_per_sec / GIB)
    } else if bytes_per_sec >= MIB {
        format!("{:.2} MiB/s", bytes_per_sec / MIB)
    } else if bytes_per_sec >= KIB {
        format!("{:.2} KiB/s", bytes_per_sec / KIB)
    } else {
        format!("{bytes_per_sec:.0} B/s")
    }
}

/// The first non-flag command-line argument, used by bench binaries as a
/// substring name filter — mirroring `cargo bench -- <filter>`.  Flags
/// such as the `--bench` marker cargo passes to `harness = false` targets
/// are ignored.
pub fn cli_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// The worker-thread count requested on the command line, from
/// `--threads N` or `--threads=N`.  Returns 1 (sequential) when absent or
/// malformed — bench binaries record this value in their emitted reports
/// so thread counts are never ambiguous in archived measurements.
pub fn cli_threads() -> usize {
    parse_threads(std::env::args().skip(1))
}

fn parse_threads(mut args: impl Iterator<Item = String>) -> usize {
    while let Some(a) = args.next() {
        if a == "--threads" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--threads=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    1
}

/// A named group of measurements with header/footer printing.
///
/// ```no_run
/// use secmed_obs::bench::{Bench, Suite};
/// let mut suite = Suite::new("sha256");
/// suite.record(Bench::new("sha256/64B").run(|| { /* op */ }));
/// suite.finish();
/// ```
pub struct Suite {
    name: String,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Starts a suite and prints its header.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        Suite {
            name,
            filter: None,
            results: Vec::new(),
        }
    }

    /// Restricts [`Suite::bench`] to measurements whose full name
    /// (`group/bench-name`) contains `filter`; `None` runs everything.
    pub fn filter(mut self, filter: Option<String>) -> Self {
        self.filter = filter;
        self
    }

    /// Whether a measurement named `name` passes the suite filter.
    pub fn matches(&self, name: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => format!("{}/{name}", self.name).contains(f.as_str()),
        }
    }

    /// Records and prints one result row.
    pub fn record(&mut self, result: BenchResult) {
        println!("{}", result.render_row());
        self.results.push(result);
    }

    /// Convenience: build, run, and record in one call.  Skipped (without
    /// running `f`) when the measurement name fails the suite filter.
    pub fn bench(&mut self, bench: Bench, f: impl FnMut()) {
        if !self.matches(&bench.name) {
            return;
        }
        self.record(bench.run(f));
    }

    /// The results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the footer and returns all results.
    pub fn finish(self) -> Vec<BenchResult> {
        println!("== {}: {} measurement(s) ==", self.name, self.results.len());
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_exact_on_known_samples() {
        let r =
            BenchResult::from_samples("known".to_string(), 1, vec![10.0, 20.0, 30.0, 40.0], None);
        assert_eq!(r.mean_ns, 25.0);
        assert_eq!(r.median_ns, 25.0);
        assert_eq!(r.min_ns, 10.0);
        assert_eq!(r.max_ns, 40.0);
        // Population stddev of {10,20,30,40} = sqrt(125).
        assert!((r.stddev_ns - 125f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn odd_sample_count_median() {
        let r = BenchResult::from_samples("odd".to_string(), 1, vec![3.0, 1.0, 2.0], None);
        assert_eq!(r.median_ns, 2.0);
    }

    #[test]
    fn throughput_computed_from_mean() {
        let r = BenchResult::from_samples("tput".to_string(), 1, vec![1000.0], Some(500));
        // 500 bytes per 1000 ns = 5e8 bytes/sec.
        let t = r.bytes_per_sec().unwrap();
        assert!((t - 5e8).abs() < 1.0);
        assert!(r.render_row().contains("MiB/s"));
    }

    #[test]
    fn run_produces_requested_samples_and_positive_times() {
        let result = Bench::new("spin")
            .warmup(Duration::from_millis(1))
            .min_sample(Duration::from_micros(50))
            .samples(5)
            .run(|| {
                black_box((0..100u64).sum::<u64>());
            });
        assert_eq!(result.samples_ns.len(), 5);
        assert!(result.batch >= 1);
        assert!(result.mean_ns > 0.0);
        assert!(result.min_ns <= result.median_ns && result.median_ns <= result.max_ns);
    }

    #[test]
    fn calibration_batches_fast_ops() {
        let result = Bench::new("nop")
            .warmup(Duration::from_millis(5))
            .min_sample(Duration::from_micros(200))
            .samples(3)
            .run(|| {
                black_box(1u64);
            });
        assert!(
            result.batch > 1,
            "a no-op must be batched, got batch={}",
            result.batch
        );
    }

    #[test]
    fn json_row_has_stats() {
        let r = BenchResult::from_samples("j".to_string(), 4, vec![1.0, 2.0], Some(8));
        let j = r.to_json().render();
        for needle in ["\"name\":\"j\"", "\"batch\":4", "mean_ns", "bytes_per_sec"] {
            assert!(j.contains(needle), "{j}");
        }
    }

    #[test]
    fn suite_filter_skips_nonmatching_names() {
        let mut suite = Suite::new("grp").filter(Some("grp/keep".to_string()));
        assert!(suite.matches("keep-this"));
        assert!(!suite.matches("drop-this"));
        let mut ran = false;
        suite.bench(
            Bench::new("drop-this")
                .warmup(Duration::from_millis(1))
                .samples(1),
            || ran = true,
        );
        assert!(!ran, "filtered bench must not run its closure");
        assert!(suite.finish().is_empty());
    }

    #[test]
    fn format_throughput_units() {
        assert_eq!(format_throughput(512.0), "512 B/s");
        assert_eq!(format_throughput(2048.0), "2.00 KiB/s");
        assert!(format_throughput(3.0 * 1024.0 * 1024.0).contains("MiB/s"));
        assert!(format_throughput(5.0 * 1024.0 * 1024.0 * 1024.0).contains("GiB/s"));
    }

    #[test]
    fn parse_threads_accepts_both_spellings_and_defaults_to_one() {
        let parse = |args: &[&str]| parse_threads(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&["--threads", "4"]), 4);
        assert_eq!(parse(&["--bench", "--threads=8", "pm"]), 8);
        assert_eq!(parse(&["pm"]), 1);
        assert_eq!(parse(&["--threads"]), 1);
        assert_eq!(parse(&["--threads", "zero?"]), 1);
        assert_eq!(parse(&["--threads", "0"]), 1, "zero clamps to sequential");
    }
}
