//! A hand-rolled JSON value model and writer.
//!
//! The observability layer must serialize traces and reports without any
//! external serialization framework, so this module defines the small JSON
//! subset the repo needs: a value enum ([`Json`]), escaping-correct string
//! output, and builders that keep call-sites terse.  Objects preserve
//! insertion order (they are association lists, not maps), which keeps
//! exported reports diffable.
//!
//! [`parse`] is the matching reader: a small tolerant recursive-descent
//! parser (leading/trailing whitespace, trailing commas, lone surrogates
//! replaced) — enough for `bench_check` to re-read `BENCH_*.json` files
//! without an external parser.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integers — serialized without a fractional part.
    Int(i64),
    /// Unsigned integers — serialized without a fractional part.
    UInt(u64),
    /// Finite floats serialize with `{}`; NaN and infinities become `null`
    /// (JSON has no spelling for them).
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_float(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl Json {
    /// Object member lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parse failure: byte offset into the input plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing stopped.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document.  Tolerant where it is cheap to be: leading
/// and trailing whitespace, trailing commas in arrays/objects, and lone
/// `\uXXXX` surrogates (replaced with U+FFFD).  Non-negative integers
/// become [`Json::UInt`], negative ones [`Json::Int`], everything else
/// numeric [`Json::Float`] — matching what the writer emits, so
/// `parse(v.render())` round-trips.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Array(items));
            }
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1; // trailing comma before ']' tolerated
                }
                Some(b']') => {}
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Object(pairs));
            }
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1; // trailing comma before '}' tolerated
                }
                Some(b'}') => {}
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let nibble = match d {
                b'0'..=b'9' => (d - b'0') as u32,
                b'a'..=b'f' => (d - b'a' + 10) as u32,
                b'A'..=b'F' => (d - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | nibble;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain UTF-8.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so any escape-free run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Try to pair a high surrogate; tolerate a
                                // lone one with U+FFFD.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    let save = self.pos;
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&lo) {
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                    } else {
                                        self.pos = save;
                                        0xfffd
                                    }
                                } else {
                                    0xfffd
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                0xfffd // lone low surrogate
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            // Out-of-range integers fall through to f64.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats recognizable as numbers with a fraction.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || (c as u32) == 0x7f => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".to_string()).render(),
            r#""a\"b\\c\nd\te\u0001""#
        );
        assert_eq!(Json::Str("ünïcode €".to_string()).render(), "\"ünïcode €\"");
    }

    #[test]
    fn containers_render_in_order() {
        let v = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::Null, Json::from("x")])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::arr([]).render(), "[]");
        assert_eq!(Json::obj::<String>([]).render(), "{}");
        assert_eq!(Json::arr([]).render_pretty(), "[]");
    }

    #[test]
    fn control_chars_and_del_escape_and_round_trip() {
        // Everything below 0x20, plus DEL (0x7f), must escape; the first
        // printable characters after DEL must not.
        let s: String = (0u32..=0x82).filter_map(char::from_u32).collect::<String>();
        let rendered = Json::Str(s.clone()).render();
        assert!(rendered.contains("\\u0000"));
        assert!(rendered.contains("\\u000b"));
        assert!(rendered.contains("\\u007f"));
        assert!(!rendered.contains("\\u0080"), "0x80+ passes through raw");
        assert_eq!(parse(&rendered), Ok(Json::Str(s)));
    }

    #[test]
    fn integer_boundaries_round_trip_with_exact_types() {
        for v in [0u64, 1, i64::MAX as u64, i64::MAX as u64 + 1, u64::MAX] {
            let j = Json::UInt(v);
            assert_eq!(parse(&j.render()), Ok(j), "u64 {v}");
        }
        for v in [i64::MIN, i64::MIN + 1, -1i64] {
            let j = Json::Int(v);
            assert_eq!(parse(&j.render()), Ok(j), "i64 {v}");
        }
        // One past i64::MIN has no integer spelling: tolerant float.
        match parse("-9223372036854775809") {
            Ok(Json::Float(f)) => assert!(f <= i64::MIN as f64),
            other => panic!("expected float fallback, got {other:?}"),
        }
    }

    #[test]
    fn object_insertion_order_survives_round_trip() {
        let v = Json::obj([
            ("zeta", Json::from(1u64)),
            ("alpha", Json::from(2u64)),
            (
                "mid",
                Json::obj([("y", Json::Null), ("x", Json::from(true))]),
            ),
        ]);
        let reparsed = parse(&v.render()).expect("round trip");
        assert_eq!(reparsed, v, "association lists preserve order");
        assert_eq!(reparsed.render(), v.render());
        // Pretty output parses back to the same value too.
        assert_eq!(parse(&v.render_pretty()), Ok(v));
    }

    #[test]
    fn parser_is_tolerant_where_documented() {
        // Leading/trailing whitespace and trailing commas.
        let v = parse(" \n\t{\"a\": [1, 2,], \"b\": {\"c\": null,},} \r\n").expect("tolerant");
        assert_eq!(v.render(), r#"{"a":[1,2],"b":{"c":null}}"#);
        // Escapes, including solidus and \b \f the writer never emits.
        assert_eq!(
            parse(r#""a\/bA\b\f""#),
            Ok(Json::Str("a/bA\u{8}\u{c}".to_string()))
        );
        // Surrogate pair and tolerated lone surrogate.
        assert_eq!(parse(r#""😀""#), Ok(Json::Str("\u{1f600}".to_string())));
        assert_eq!(
            parse(r#""\ud800x""#),
            Ok(Json::Str("\u{fffd}x".to_string()))
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1 2]",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "nul",
            "-",
            "{\"a\":1} trailing",
            r#""\q""#,
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(!e.message.is_empty());
            assert!(e.to_string().contains("json parse error"));
        }
        // Depth bomb stays an error, not a stack overflow.
        let deep = "[".repeat(4000) + &"]".repeat(4000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn typed_accessors() {
        let v = parse(r#"{"s":"x","u":7,"i":-7,"f":1.5,"a":[true]}"#).expect("parse");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("i").and_then(Json::as_u64), None);
        assert_eq!(v.get("i").and_then(Json::as_f64), Some(-7.0));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.as_object().map(<[(String, Json)]>::len), Some(5));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("s"), None);
    }

    #[test]
    fn float_round_trip_through_parse() {
        for v in [0.0f64, 2.0, -1.25, 6.02e23, 1e-9] {
            let rendered = Json::Float(v).render();
            let back = parse(&rendered)
                .expect(&rendered)
                .as_f64()
                .expect("numeric");
            assert_eq!(back, v, "{rendered}");
        }
    }

    #[test]
    fn pretty_is_indented_and_reparses_identically() {
        let v = Json::obj([
            ("name", Json::from("run")),
            ("counts", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("nested", Json::obj([("k", Json::from(true))])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"counts\": [\n    1,\n    2\n  ]"));
        // Stripping structural whitespace recovers the compact form.
        let compact: String = v.render();
        let mut in_str = false;
        let stripped: String = pretty
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_str = !in_str;
                }
                in_str || !c.is_whitespace()
            })
            .collect();
        // `": "` inside pretty objects becomes `":"` once whitespace is gone.
        assert_eq!(stripped, compact);
    }
}
