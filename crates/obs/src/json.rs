//! A hand-rolled JSON value model and writer.
//!
//! The observability layer must serialize traces and reports without any
//! external serialization framework, so this module defines the small JSON
//! subset the repo needs: a value enum ([`Json`]), escaping-correct string
//! output, and builders that keep call-sites terse.  Objects preserve
//! insertion order (they are association lists, not maps), which keeps
//! exported reports diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integers — serialized without a fractional part.
    Int(i64),
    /// Unsigned integers — serialized without a fractional part.
    UInt(u64),
    /// Finite floats serialize with `{}`; NaN and infinities become `null`
    /// (JSON has no spelling for them).
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_float(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep integral floats recognizable as numbers with a fraction.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\te\u{1}".to_string()).render(),
            r#""a\"b\\c\nd\te\u0001""#
        );
        assert_eq!(Json::Str("ünïcode €".to_string()).render(), "\"ünïcode €\"");
    }

    #[test]
    fn containers_render_in_order() {
        let v = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::Null, Json::from("x")])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::arr([]).render(), "[]");
        assert_eq!(Json::obj::<String>([]).render(), "{}");
        assert_eq!(Json::arr([]).render_pretty(), "[]");
    }

    #[test]
    fn pretty_is_indented_and_reparses_identically() {
        let v = Json::obj([
            ("name", Json::from("run")),
            ("counts", Json::arr([Json::from(1u64), Json::from(2u64)])),
            ("nested", Json::obj([("k", Json::from(true))])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"counts\": [\n    1,\n    2\n  ]"));
        // Stripping structural whitespace recovers the compact form.
        let compact: String = v.render();
        let mut in_str = false;
        let stripped: String = pretty
            .chars()
            .filter(|&c| {
                if c == '"' {
                    in_str = !in_str;
                }
                in_str || !c.is_whitespace()
            })
            .collect();
        // `": "` inside pretty objects becomes `":"` once whitespace is gone.
        assert_eq!(stripped, compact);
    }
}
