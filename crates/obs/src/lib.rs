#![forbid(unsafe_code)]

//! Offline-first observability for the secure-mediation system.
//!
//! Everything in this crate is std-only with zero external dependencies,
//! so the workspace builds and measures itself fully offline:
//!
//! * [`trace`] — structured hierarchical spans and events over a
//!   process-global, thread-safe buffer, exported as JSON-lines,
//! * [`report`] — the unified [`report::RunReport`] joining phase timings,
//!   transport traffic, the primitive census, and the leakage audit of one
//!   protocol run, rendered as JSON or an aligned table,
//! * [`bench`] — a micro-benchmark harness (warmup, batch calibration,
//!   mean/median/stddev, optional throughput) used by every bench binary,
//! * [`metrics`] — the process-global metrics registry: counters, gauges,
//!   and log₂ histograms, split into a *deterministic* class (seed-pure,
//!   safe inside `RunReport`) and a *timing* class (wall-clock, exported
//!   separately behind a [`metrics::Clock`] abstraction),
//! * [`profile`] — span-profile aggregation: folds a trace into a
//!   self/total-time tree with collapsed-stack (flamegraph) output,
//! * [`trajectory`] — the `BENCH_*.json` performance-trajectory schema,
//!   writer, and validator backing `scripts/bench_check.sh`,
//! * [`json`] — the hand-rolled JSON value model (and tolerant parser)
//!   the other modules emit and re-read.

pub mod bench;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod trace;
pub mod trajectory;

pub use json::Json;
pub use metrics::{Class, Counter, Gauge, Hist, Histogram, MetricsSnapshot};
pub use profile::{Profile, ProfileNode};
pub use report::{EdgeStat, OpStat, PhaseStat, RunReport};
pub use trace::{event, event_with, span, SpanGuard};
pub use trajectory::TrajectoryFile;
