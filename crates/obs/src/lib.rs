#![forbid(unsafe_code)]

//! Offline-first observability for the secure-mediation system.
//!
//! Everything in this crate is std-only with zero external dependencies,
//! so the workspace builds and measures itself fully offline:
//!
//! * [`trace`] — structured hierarchical spans and events over a
//!   process-global, thread-safe buffer, exported as JSON-lines,
//! * [`report`] — the unified [`report::RunReport`] joining phase timings,
//!   transport traffic, the primitive census, and the leakage audit of one
//!   protocol run, rendered as JSON or an aligned table,
//! * [`bench`] — a micro-benchmark harness (warmup, batch calibration,
//!   mean/median/stddev, optional throughput) used by every bench binary,
//! * [`json`] — the hand-rolled JSON value model the other modules emit.

pub mod bench;
pub mod json;
pub mod report;
pub mod trace;

pub use json::Json;
pub use report::{EdgeStat, OpStat, PhaseStat, RunReport};
pub use trace::{event, event_with, span, SpanGuard};
