//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms, split into two classes.
//!
//! * [`Class::Deterministic`] — operation counts, frames, bytes, retries:
//!   pure functions of the scenario seed.  The engine records its
//!   per-run deterministic metrics into the `RunReport`, so the CI
//!   byte-identical-across-thread-counts assertion covers them.
//! * [`Class::Timing`] — wall-clock observations (phase latency,
//!   per-primitive timing).  These are *never* part of a `RunReport`;
//!   they export separately and are excluded from determinism diffs.
//!
//! Clock reads are confined to this crate (the repo's determinism lint
//! bans `Instant` elsewhere): instrumented code in core/pool/crypto calls
//! [`start_timer`], and the read happens here, behind the [`Clock`]
//! abstraction — swap in a [`ManualClock`] to make timing tests exact.
//!
//! Handles are interned: [`counter`]/[`gauge`]/[`histogram`] return
//! `Copy` handles backed by leaked atomics, so hot paths pay one atomic
//! RMW per event and can cache the handle in a `OnceLock`.  Counter and
//! histogram updates commute, so parallel workers produce the same
//! totals regardless of scheduling — which is what lets deterministic
//! metrics survive the thread-count sweep.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// How a metric relates to the determinism invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// A pure function of the scenario inputs: safe inside `RunReport`
    /// and inside byte-identical determinism diffs.
    Deterministic,
    /// Derived from the wall clock: exported separately, never diffed.
    Timing,
}

impl Class {
    /// Lowercase key used in JSON exports.
    pub fn key(self) -> &'static str {
        match self {
            Class::Deterministic => "deterministic",
            Class::Timing => "timing",
        }
    }
}

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `k`
/// (1..=64) holds values with bit length `k`, i.e. `[2^(k-1), 2^k - 1]`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket a value lands in.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper bound of a bucket (what percentiles report).
fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// A plain (non-atomic) log₂ histogram: the snapshot/merge/percentile
/// arithmetic, reused by the atomic registry cells and by code that
/// builds per-run histograms locally (e.g. the engine's frame-size
/// distribution).
#[derive(Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count())
            .field("p50", &self.percentile(50.0))
            .field("p90", &self.percentile(90.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            max: 0,
        }
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.max = self.max.max(v);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The largest recorded value (0 for an empty histogram).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Folds another histogram into this one (bucket-wise addition;
    /// associative and commutative, so merge order never matters).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile (0 < p ≤ 100) as the inclusive upper bound
    /// of the bucket holding that rank; the exact `max` caps the answer.
    /// An empty histogram reports 0.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience percentiles.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }
    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Bucket-wise difference `self - earlier` (saturating), for
    /// snapshot deltas.
    pub fn since(&self, earlier: &Hist) -> Hist {
        let mut out = Hist::new();
        for (i, (a, b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[i] = a.saturating_sub(*b);
        }
        // The true max of the delta is unrecoverable from buckets alone;
        // the current max is the honest upper bound.
        out.max = if out.count() == 0 { 0 } else { self.max };
        out
    }

    /// Summary as a JSON object (`count`, `p50`, `p90`, `p99`, `max`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::UInt(self.count())),
            ("p50", Json::UInt(self.p50())),
            ("p90", Json::UInt(self.p90())),
            ("p99", Json::UInt(self.p99())),
            ("max", Json::UInt(self.max)),
        ])
    }
}

/// The atomic cell behind a registered histogram.
struct HistCell {
    buckets: [AtomicU64; HIST_BUCKETS],
    max: AtomicU64,
}

impl HistCell {
    fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn load(&self) -> Hist {
        let mut h = Hist::new();
        for (slot, b) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

/// A monotonically increasing count.  `Copy`: cache it, pass it around.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (last write wins).
#[derive(Clone, Copy)]
pub struct Gauge(&'static AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registered log₂ histogram.
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistCell);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.observe(v);
    }

    /// A plain copy of the current contents.
    pub fn load(&self) -> Hist {
        self.0.load()
    }
}

/// What kind of instrument a name is registered as.
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

static REGISTRY: Mutex<BTreeMap<String, (Class, Slot)>> = Mutex::new(BTreeMap::new());

fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, (Class, Slot)>> {
    // Registry updates never panic while holding the lock, but a poisoned
    // lock must not take the whole process down with it.
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Interns (or retrieves) the counter `name`.  If the name is already
/// registered as a different instrument kind, a detached cell is returned
/// so the call stays total — the registered instrument keeps its data.
pub fn counter(class: Class, name: &str) -> Counter {
    let mut reg = lock_registry();
    if let Some((_, Slot::Counter(c))) = reg.get(name) {
        return *c;
    }
    let fresh = Counter(Box::leak(Box::new(AtomicU64::new(0))));
    if !reg.contains_key(name) {
        reg.insert(name.to_string(), (class, Slot::Counter(fresh)));
    }
    fresh
}

/// Interns (or retrieves) the gauge `name` (same collision contract as
/// [`counter`]).
pub fn gauge(class: Class, name: &str) -> Gauge {
    let mut reg = lock_registry();
    if let Some((_, Slot::Gauge(g))) = reg.get(name) {
        return *g;
    }
    let fresh = Gauge(Box::leak(Box::new(AtomicU64::new(0))));
    if !reg.contains_key(name) {
        reg.insert(name.to_string(), (class, Slot::Gauge(fresh)));
    }
    fresh
}

/// Interns (or retrieves) the histogram `name` (same collision contract
/// as [`counter`]).
pub fn histogram(class: Class, name: &str) -> Histogram {
    let mut reg = lock_registry();
    if let Some((_, Slot::Histogram(h))) = reg.get(name) {
        return *h;
    }
    let cell = HistCell {
        buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        max: AtomicU64::new(0),
    };
    let fresh = Histogram(Box::leak(Box::new(cell)));
    if !reg.contains_key(name) {
        reg.insert(name.to_string(), (class, Slot::Histogram(fresh)));
    }
    fresh
}

/// One-shot counter add (interns on first use).
pub fn incr(class: Class, name: &str, by: u64) {
    counter(class, name).add(by);
}

/// One-shot histogram observation (interns on first use).
pub fn observe(class: Class, name: &str, v: u64) {
    histogram(class, name).observe(v);
}

// ---------------------------------------------------------------------
// Clock abstraction
// ---------------------------------------------------------------------

/// A nanosecond clock.  The registry's default reads the process
/// monotonic clock (via [`crate::trace::now_ns`], the one sanctioned
/// `Instant` user); tests install a [`ManualClock`] for exact timings.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds (monotonic, arbitrary epoch).
    fn now_ns(&self) -> u64;

    /// Blocks the calling thread for `ns` nanoseconds.  The default
    /// parks the OS thread; [`ManualClock`] just advances itself, so
    /// tests that drive backoff or drain loops never actually sleep.
    fn sleep_ns(&self, ns: u64) {
        std::thread::sleep(std::time::Duration::from_nanos(ns));
    }
}

/// A hand-cranked clock for tests.
#[derive(Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock starting at `ns`.
    pub fn at(ns: u64) -> Self {
        ManualClock(AtomicU64::new(ns))
    }

    /// Advances the clock.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn sleep_ns(&self, ns: u64) {
        self.advance(ns);
    }
}

/// The process monotonic clock as an explicit [`Clock`] value, for
/// components that take a clock by parameter (the server, the socket
/// fabric's reconnect backoff) rather than through the registry global.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        crate::trace::now_ns()
    }
}

static CLOCK: Mutex<Option<Arc<dyn Clock>>> = Mutex::new(None);

/// Installs a clock for all subsequent timers (tests only, typically).
pub fn set_clock(clock: Arc<dyn Clock>) {
    *CLOCK.lock().unwrap_or_else(|e| e.into_inner()) = Some(clock);
}

/// Restores the default monotonic clock.
pub fn reset_clock() {
    *CLOCK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

fn clock_now_ns() -> u64 {
    let installed = CLOCK.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match installed {
        Some(c) => c.now_ns(),
        None => crate::trace::now_ns(),
    }
}

/// Sleeps through the installed clock (or the real one when none is
/// installed).  Like [`start_timer`], this is the only sanctioned way
/// instrumented code outside `crates/obs`/`crates/bench` parks a thread
/// on wall time — under a [`ManualClock`] it merely advances test time.
pub fn sleep_ns(ns: u64) {
    let installed = CLOCK.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match installed {
        Some(c) => c.sleep_ns(ns),
        None => MonotonicClock.sleep_ns(ns),
    }
}

/// A running timer; dropping it records the elapsed nanoseconds into the
/// timing-class histogram it was started against.
pub struct Timer {
    hist: Histogram,
    start: u64,
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.observe(clock_now_ns().saturating_sub(self.start));
    }
}

/// Starts a timer against the timing-class histogram `name`.  This is
/// the only way instrumented code outside `crates/obs`/`crates/bench`
/// touches the wall clock — the read happens here, behind [`Clock`].
pub fn start_timer(name: &str) -> Timer {
    Timer {
        hist: histogram(Class::Timing, name),
        start: clock_now_ns(),
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// A point-in-time copy of the whole registry (or a diff of two).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, (Class, u64)>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, (Class, u64)>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, (Class, Hist)>,
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock_registry();
    let mut out = MetricsSnapshot::default();
    for (name, (class, slot)) in reg.iter() {
        match slot {
            Slot::Counter(c) => {
                out.counters.insert(name.clone(), (*class, c.get()));
            }
            Slot::Gauge(g) => {
                out.gauges.insert(name.clone(), (*class, g.get()));
            }
            Slot::Histogram(h) => {
                out.histograms.insert(name.clone(), (*class, h.load()));
            }
        }
    }
    out
}

impl MetricsSnapshot {
    /// The delta `self - earlier`: counters and histograms diff
    /// (zero/empty entries dropped); gauges keep their current level
    /// (a level has no meaningful difference).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (name, (class, v)) in &self.counters {
            let base = earlier.counters.get(name).map(|(_, b)| *b).unwrap_or(0);
            let d = v.saturating_sub(base);
            if d > 0 {
                out.counters.insert(name.clone(), (*class, d));
            }
        }
        for (name, (class, v)) in &self.gauges {
            out.gauges.insert(name.clone(), (*class, *v));
        }
        for (name, (class, h)) in &self.histograms {
            let d = match earlier.histograms.get(name) {
                Some((_, base)) => h.since(base),
                None => h.clone(),
            };
            if !d.is_empty() {
                out.histograms.insert(name.clone(), (*class, d));
            }
        }
        out
    }

    /// Only the metrics of one class.
    pub fn only(&self, class: Class) -> MetricsSnapshot {
        let keep_c = |m: &BTreeMap<String, (Class, u64)>| {
            m.iter()
                .filter(|(_, (c, _))| *c == class)
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        MetricsSnapshot {
            counters: keep_c(&self.counters),
            gauges: keep_c(&self.gauges),
            histograms: self
                .histograms
                .iter()
                .filter(|(_, (c, _))| *c == class)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// A counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// A histogram's contents, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Hist> {
        self.histograms.get(name).map(|(_, h)| h)
    }

    /// Whether the snapshot carries no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The snapshot as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,p50,..}}}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Object(
                    self.counters
                        .iter()
                        .map(|(k, (_, v))| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Object(
                    self.gauges
                        .iter()
                        .map(|(k, (_, v))| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Object(
                    self.histograms
                        .iter()
                        .map(|(k, (_, h))| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registered names are process-global; every test uses its own
    // prefix so parallel test threads cannot collide.

    #[test]
    fn counters_intern_and_accumulate() {
        let a = counter(Class::Deterministic, "t.m1.hits");
        let b = counter(Class::Deterministic, "t.m1.hits");
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        incr(Class::Deterministic, "t.m1.hits", 4);
        assert_eq!(b.get(), 7);
    }

    #[test]
    fn gauges_set_raise_and_get() {
        let g = gauge(Class::Deterministic, "t.m2.level");
        g.set(10);
        g.raise(7);
        assert_eq!(g.get(), 10, "raise below the level is a no-op");
        g.raise(15);
        assert_eq!(g.get(), 15);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn kind_collision_returns_detached_cell_not_corruption() {
        let c = counter(Class::Deterministic, "t.m3.shared");
        c.add(5);
        // Asking for the same name as a histogram must not clobber the
        // counter; the returned histogram is detached but usable.
        let h = histogram(Class::Deterministic, "t.m3.shared");
        h.observe(1);
        assert_eq!(c.get(), 5);
        assert_eq!(counter(Class::Deterministic, "t.m3.shared").get(), 5);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 0 is its own bucket; k >= 1 holds [2^(k-1), 2^k - 1].
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_of((1u64 << 63) - 1), 63);
        // Bounds are the inclusive bucket maxima.
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(63), (1u64 << 63) - 1);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn percentiles_walk_buckets_and_cap_at_max() {
        let mut h = Hist::new();
        // 90 small values, 10 large ones.
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 3, "median falls in the [2,3] bucket");
        assert_eq!(h.p90(), 3, "rank 90 is the last small value");
        // Rank 99 lands in 1000's bucket [512,1023]; max caps it at 1000.
        assert_eq!(h.p99(), 1000);
        assert_eq!(h.max(), 1000);
        // A single value: every percentile is its bucket bound ∧ max.
        let mut one = Hist::new();
        one.observe(5);
        assert_eq!(one.p50(), 5, "bucket bound 7 capped by max 5");
        assert_eq!(one.percentile(1.0), 5);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Hist::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let a = mk(&[1, 2, 3]);
        let b = mk(&[100, 200]);
        let c = mk(&[0, 7, 7, 7]);
        // (a+b)+c == a+(b+c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a+b == b+a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.max(), 200);
    }

    #[test]
    fn p99_is_monotone_under_merges() {
        // Merging in more data can only move p99 upward when the new
        // data sits at or above it — never below the pre-merge floor
        // formed by the smaller distribution's p99.
        let mut base = Hist::new();
        for v in 1..=100u64 {
            base.observe(v);
        }
        let p_before = base.p99();
        let mut grown = base.clone();
        let mut tail = Hist::new();
        for _ in 0..50 {
            tail.observe(1 << 20);
        }
        grown.merge(&tail);
        assert!(
            grown.p99() >= p_before,
            "adding a high tail must not lower p99: {} < {p_before}",
            grown.p99()
        );
        // And percentiles stay internally ordered after any merge.
        assert!(grown.p50() <= grown.p90());
        assert!(grown.p90() <= grown.p99());
        assert!(grown.p99() <= grown.max());
    }

    #[test]
    fn hist_since_subtracts_buckets() {
        let mut before = Hist::new();
        before.observe(4);
        let mut after = before.clone();
        after.observe(4);
        after.observe(900);
        let d = after.since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.max(), 900);
        let empty = after.since(&after);
        assert!(empty.is_empty());
        assert_eq!(empty.max(), 0);
    }

    #[test]
    fn registered_histogram_snapshots_through_registry() {
        let h = histogram(Class::Deterministic, "t.m4.sizes");
        let before = snapshot();
        h.observe(10);
        h.observe(2000);
        let delta = snapshot().since(&before);
        let d = delta.histogram("t.m4.sizes").expect("recorded");
        assert_eq!(d.count(), 2);
        assert_eq!(d.max(), 2000);
        assert!(delta.counter("t.m4.sizes") == 0, "not a counter");
    }

    #[test]
    fn snapshot_since_drops_untouched_metrics() {
        counter(Class::Deterministic, "t.m5.quiet").add(3);
        let before = snapshot();
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter("t.m5.quiet"), 0);
        assert!(!delta.counters.contains_key("t.m5.quiet"));
    }

    #[test]
    fn class_filter_splits_deterministic_from_timing() {
        counter(Class::Deterministic, "t.m6.det").add(1);
        counter(Class::Timing, "t.m6.time").add(1);
        let s = snapshot();
        let det = s.only(Class::Deterministic);
        let tim = s.only(Class::Timing);
        assert!(det.counters.contains_key("t.m6.det"));
        assert!(!det.counters.contains_key("t.m6.time"));
        assert!(tim.counters.contains_key("t.m6.time"));
        assert!(!tim.counters.contains_key("t.m6.det"));
    }

    #[test]
    fn manual_clock_makes_timers_exact() {
        let clock = Arc::new(ManualClock::at(1_000));
        set_clock(clock.clone());
        let before = snapshot();
        {
            let _t = start_timer("t.m7.phase_ns");
            clock.advance(250);
        }
        reset_clock();
        let delta = snapshot().since(&before);
        let h = delta.histogram("t.m7.phase_ns").expect("timer recorded");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 250);
        // Timers are timing-class: a deterministic filter excludes them.
        assert!(delta
            .only(Class::Deterministic)
            .histogram("t.m7.phase_ns")
            .is_none());
    }

    #[test]
    fn snapshot_json_has_all_sections() {
        counter(Class::Deterministic, "t.m8.c").add(2);
        gauge(Class::Deterministic, "t.m8.g").set(9);
        histogram(Class::Deterministic, "t.m8.h").observe(5);
        let j = snapshot().to_json().render();
        for needle in [
            r#""t.m8.c":2"#,
            r#""t.m8.g":9"#,
            r#""t.m8.h":{"count":"#,
            r#""counters""#,
            r#""gauges""#,
            r#""histograms""#,
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }
}
