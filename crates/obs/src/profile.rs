//! Span-profile aggregation: folds a flat trace ([`crate::trace::Record`]
//! slices) into a self/total-time profile tree, with collapsed-stack
//! output compatible with standard flamegraph tooling.
//!
//! Aggregation is by *name path*: every span's chain of ancestor names
//! (root → span) identifies a tree node, and all spans sharing a path
//! merge into one node (call count + total time).  Self time is a node's
//! total minus its children's totals, so summing `self_ns` over any
//! subtree reproduces the subtree root's `total_ns` — the invariant
//! `trace_report` asserts against the raw span trace.

use std::collections::BTreeMap;

use crate::trace::Record;

/// One aggregated node of the profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// The span name shared by every call merged into this node.
    pub name: String,
    /// How many spans merged here.
    pub calls: u64,
    /// Sum of the merged spans' durations.
    pub total_ns: u64,
    /// `total_ns` minus the children's `total_ns` (saturating).
    pub self_ns: u64,
    /// Child nodes, in first-appearance order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: &str) -> Self {
        ProfileNode {
            name: name.to_string(),
            calls: 0,
            total_ns: 0,
            self_ns: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut ProfileNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(ProfileNode::new(name));
        let last = self.children.len() - 1;
        &mut self.children[last]
    }

    fn settle_self(&mut self) {
        let child_total: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.self_ns = self.total_ns.saturating_sub(child_total);
        for c in &mut self.children {
            c.settle_self();
        }
    }
}

/// A profile: a forest of aggregated span trees (one root per top-level
/// span name; worker threads and repeated runs merge by name path).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Root nodes in first-appearance order.
    pub roots: Vec<ProfileNode>,
}

/// Builds a profile from trace records.  Events are ignored; spans whose
/// parent is missing from `records` (e.g. the trace slice starts inside
/// an enclosing span) are treated as roots of their visible chain.
pub fn aggregate(records: &[Record]) -> Profile {
    // Parent resolution needs every span visible, not just earlier ones:
    // parents close (and are appended) *after* their children.
    let by_id: BTreeMap<u64, &Record> = records
        .iter()
        .filter(|r| r.is_span())
        .map(|r| (r.id, r))
        .collect();

    // Paths must land parents before children so merge order can't put a
    // child's total ahead of its parent's; insertion into the tree is
    // order-independent anyway, but first-appearance child ordering reads
    // best when walked in record (completion) order.
    let mut forest = ProfileNode::new("");
    for r in records.iter().filter(|r| r.is_span()) {
        // Name path from root to this span.  Span ids are assigned at
        // open time from a monotone counter, so a parent's id is always
        // smaller than its child's — chains terminate.
        let mut path = vec![r.name.as_str()];
        let mut cursor: &Record = r;
        while let Some(pid) = cursor.parent {
            match by_id.get(&pid) {
                Some(p) if p.id < cursor.id => {
                    path.push(p.name.as_str());
                    cursor = p;
                }
                _ => break,
            }
        }
        path.reverse();
        let mut node = &mut forest;
        for name in path {
            node = node.child_mut(name);
        }
        node.calls += 1;
        node.total_ns += r.duration_ns();
    }
    forest.settle_self();
    Profile {
        roots: forest.children,
    }
}

fn walk<'a>(
    node: &'a ProfileNode,
    stack: &mut Vec<&'a str>,
    out: &mut Vec<(String, &'a ProfileNode)>,
) {
    stack.push(&node.name);
    out.push((stack.join(";"), node));
    for c in &node.children {
        walk(c, stack, out);
    }
    stack.pop();
}

impl Profile {
    /// Every node paired with its `;`-joined name path, depth-first.
    pub fn flatten(&self) -> Vec<(String, &ProfileNode)> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for r in &self.roots {
            walk(r, &mut stack, &mut out);
        }
        out
    }

    /// Collapsed-stack text (`root;child;leaf <self_ns>` per line), the
    /// input format of standard flamegraph renderers.  Zero-self nodes
    /// are omitted, so the line weights of any subtree sum exactly to
    /// the subtree root's `total_ns`.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (path, node) in self.flatten() {
            if node.self_ns > 0 {
                out.push_str(&path);
                out.push(' ');
                out.push_str(&node.self_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Summed `total_ns` of every node named `name`, anywhere in the
    /// forest — matches per-phase totals computed straight from records.
    pub fn total_of(&self, name: &str) -> u64 {
        self.flatten()
            .iter()
            .filter(|(_, n)| n.name == name)
            .map(|(_, n)| n.total_ns)
            .sum()
    }

    /// Sum of all `self_ns` — equals the sum of root totals.
    pub fn self_total(&self) -> u64 {
        self.flatten().iter().map(|(_, n)| n.self_ns).sum()
    }

    /// An indented human-readable table (name, calls, total, self).
    pub fn render_table(&self) -> String {
        let rows = self.flatten();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>7} {:>14} {:>14}\n",
            "span", "calls", "total_ns", "self_ns"
        ));
        for (path, node) in rows {
            let depth = path.matches(';').count();
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            out.push_str(&format!(
                "{:<44} {:>7} {:>14} {:>14}\n",
                label, node.calls, node.total_ns, node.self_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FieldValue, RecordKind};

    fn span_rec(id: u64, parent: Option<u64>, name: &str, start: u64, end: u64) -> Record {
        Record {
            id,
            parent,
            name: name.to_string(),
            kind: RecordKind::Span {
                start_ns: start,
                end_ns: end,
            },
            thread: "t".to_string(),
            fields: Vec::<(String, FieldValue)>::new(),
        }
    }

    fn event_rec(id: u64, parent: Option<u64>, name: &str) -> Record {
        Record {
            id,
            parent,
            name: name.to_string(),
            kind: RecordKind::Event { at_ns: 0 },
            thread: "t".to_string(),
            fields: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        // run(0..100) > phase_a(10..40), phase_b(50..90)
        let records = vec![
            span_rec(2, Some(1), "phase_a", 10, 40),
            span_rec(3, Some(1), "phase_b", 50, 90),
            span_rec(1, None, "run", 0, 100),
        ];
        let p = aggregate(&records);
        assert_eq!(p.roots.len(), 1);
        let run = &p.roots[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.total_ns, 100);
        assert_eq!(run.self_ns, 100 - 30 - 40);
        assert_eq!(run.children.len(), 2);
        assert_eq!(p.total_of("phase_a"), 30);
        assert_eq!(p.self_total(), 100, "Σ self == root total");
    }

    #[test]
    fn same_name_paths_merge_calls() {
        let records = vec![
            span_rec(2, Some(1), "chunk", 0, 10),
            span_rec(3, Some(1), "chunk", 10, 25),
            span_rec(1, None, "map", 0, 30),
            span_rec(5, Some(4), "chunk", 0, 5),
            span_rec(4, None, "map", 0, 6),
        ];
        let p = aggregate(&records);
        assert_eq!(p.roots.len(), 1, "both maps merge into one root");
        let map = &p.roots[0];
        assert_eq!(map.calls, 2);
        assert_eq!(map.total_ns, 36);
        let chunk = &map.children[0];
        assert_eq!(chunk.calls, 3);
        assert_eq!(chunk.total_ns, 30);
        assert_eq!(map.self_ns, 6);
    }

    #[test]
    fn events_and_missing_parents_are_tolerated() {
        let records = vec![
            event_rec(9, Some(1), "tick"),
            // Parent id 100 is not in the slice: treated as a root.
            span_rec(7, Some(100), "orphan", 0, 12),
            span_rec(1, None, "root", 0, 20),
        ];
        let p = aggregate(&records);
        let names: Vec<&str> = p.roots.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["orphan", "root"]);
        assert_eq!(p.total_of("tick"), 0, "events don't aggregate");
        assert_eq!(p.self_total(), 32);
    }

    #[test]
    fn collapsed_lines_sum_to_root_totals() {
        let records = vec![
            span_rec(3, Some(2), "leaf", 0, 7),
            span_rec(2, Some(1), "mid", 0, 7), // zero self: all time in leaf
            span_rec(1, None, "top", 0, 50),
        ];
        let p = aggregate(&records);
        let collapsed = p.collapsed();
        let mut sum = 0u64;
        for line in collapsed.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("weight");
            assert!(path.starts_with("top"));
            sum += weight.parse::<u64>().expect("number");
        }
        assert_eq!(sum, 50, "Σ collapsed weights == root total: {collapsed}");
        assert!(collapsed.contains("top;mid;leaf 7"));
        assert!(
            !collapsed.contains("top;mid "),
            "zero-self node omitted: {collapsed}"
        );
    }

    #[test]
    fn real_trace_round_trips_through_aggregation() {
        let mark = crate::trace::checkpoint();
        {
            let _outer = crate::trace::span("prof.outer");
            {
                let _inner = crate::trace::span("prof.inner");
            }
            {
                let _inner = crate::trace::span("prof.inner");
            }
        }
        let records: Vec<Record> = crate::trace::take_since(mark)
            .into_iter()
            .filter(|r| r.name.starts_with("prof."))
            .collect();
        let p = aggregate(&records);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].name, "prof.outer");
        assert_eq!(p.roots[0].children[0].calls, 2);
        assert_eq!(
            p.roots[0].total_ns,
            p.self_total(),
            "self times sum back to the outer span"
        );
        assert!(p.collapsed().contains("prof.outer;prof.inner "));
    }
}
