//! Unified run reports.
//!
//! A [`RunReport`] joins the four observability surfaces of a protocol run
//! into one typed record:
//!
//! * per-phase wall-clock timings, aggregated from trace spans,
//! * per-edge message counts and byte volumes from the transport log,
//! * the cryptographic-primitive census (operation counts),
//! * the leakage-audit summary (what each principal observed).
//!
//! The report renders to JSON (machine consumption, [`RunReport::to_json`])
//! and to an aligned text table (terminal consumption,
//! [`RunReport::render_table`]).  Producers fill the struct directly; the
//! canonical producer is `secmed_core::observe::unified_report`.

use crate::json::Json;
use crate::trace::Record;

/// Aggregated wall-clock time for one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Span name, e.g. `"das.encryption"`.
    pub name: String,
    /// Number of spans aggregated into this row.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub wall_ns: u64,
}

/// Message statistics for one directed communication edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStat {
    /// Sender, e.g. `"client"`.
    pub from: String,
    /// Receiver, e.g. `"mediator"`.
    pub to: String,
    /// Messages sent along this edge.
    pub messages: u64,
    /// Payload bytes across those messages.
    pub bytes: u64,
}

/// Invocation count for one cryptographic primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStat {
    /// Primitive name, e.g. `"hybrid-encrypt"`.
    pub name: String,
    /// Number of invocations during the run.
    pub count: u64,
}

/// Predicted-vs-observed record for one node of an executed query plan.
///
/// Counts are totals over the primitive census; `divergence_ppm` is the
/// worst per-counter relative error in parts per million (0 = the §6
/// closed forms matched the measured census exactly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanNodeStat {
    /// Node label, e.g. `"r1 ⨝ r2"`.
    pub label: String,
    /// Protocol the node ran, e.g. `"pm"`.
    pub protocol: String,
    /// Total predicted primitive invocations for this node.
    pub predicted_ops: u64,
    /// Total observed primitive invocations for this node.
    pub observed_ops: u64,
    /// Worst per-counter predicted-vs-observed error, parts per million.
    pub divergence_ppm: u64,
    /// Rows the node's join delivered.
    pub result_rows: u64,
}

/// The unified report for one protocol run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Protocol name, e.g. `"das"`.
    pub protocol: String,
    /// Workload description as ordered key/value pairs
    /// (rows, domain sizes, seed, ...).
    pub workload: Vec<(String, u64)>,
    /// Per-phase timings, in first-start order.
    pub phases: Vec<PhaseStat>,
    /// Per-edge message statistics, in first-use order.
    pub edges: Vec<EdgeStat>,
    /// Primitive census, non-zero ops only, in census order.
    pub ops: Vec<OpStat>,
    /// Interaction counts per conversation partner of the mediator
    /// (an interaction is a maximal run of consecutive messages exchanged
    /// with one partner — the paper's §6 round metric).
    pub interactions: Vec<(String, u64)>,
    /// Human-readable leakage-audit lines (mediator view, then client view).
    pub leakage: Vec<String>,
    /// Rows in the final join result delivered to the client.
    pub result_rows: u64,
    /// Robustness outcome key (`clean`/`recovered`/`degraded`/`aborted`);
    /// empty for producers that predate fault injection.
    pub outcome: String,
    /// Retransmissions the delivery layer executed during the run.
    pub retries: u64,
    /// Deterministic-class run metrics as sorted `(name, value)` pairs —
    /// fabric totals, per-kind fault counts, primitive census entries and
    /// result cardinality, all derived from the run's own recorders (never
    /// from wall clocks), so the vector is reproducible across reruns and
    /// thread counts.
    pub metrics: Vec<(String, u64)>,
    /// Per-node plan execution rows (chosen protocol plus the
    /// predicted-vs-observed primitive cross-check); empty for single-join
    /// runs that did not go through a planner.
    pub plan: Vec<PlanNodeStat>,
}

impl RunReport {
    /// Aggregates trace spans into [`PhaseStat`] rows.
    ///
    /// Spans sharing a name are merged (summed durations, counted calls);
    /// rows appear in order of each name's first appearance.  Events and
    /// spans outside `prefix` (when given) are ignored.
    pub fn phases_from_records(records: &[Record], prefix: Option<&str>) -> Vec<PhaseStat> {
        let mut phases: Vec<PhaseStat> = Vec::new();
        for r in records {
            if !r.is_span() {
                continue;
            }
            if let Some(p) = prefix {
                if !r.name.starts_with(p) {
                    continue;
                }
            }
            match phases.iter_mut().find(|s| s.name == r.name) {
                Some(s) => {
                    s.calls += 1;
                    s.wall_ns += r.duration_ns();
                }
                None => phases.push(PhaseStat {
                    name: r.name.clone(),
                    calls: 1,
                    wall_ns: r.duration_ns(),
                }),
            }
        }
        phases
    }

    /// Total messages across all edges.
    pub fn total_messages(&self) -> u64 {
        self.edges.iter().map(|e| e.messages).sum()
    }

    /// Total payload bytes across all edges.
    pub fn total_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Total primitive invocations.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|o| o.count).sum()
    }

    /// The report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::Str(self.protocol.clone())),
            (
                "workload",
                Json::Object(
                    self.workload
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "phases",
                Json::arr(self.phases.iter().map(|p| {
                    Json::obj([
                        ("name", Json::Str(p.name.clone())),
                        ("calls", Json::UInt(p.calls)),
                        ("wall_ns", Json::UInt(p.wall_ns)),
                    ])
                })),
            ),
            (
                "edges",
                Json::arr(self.edges.iter().map(|e| {
                    Json::obj([
                        ("from", Json::Str(e.from.clone())),
                        ("to", Json::Str(e.to.clone())),
                        ("messages", Json::UInt(e.messages)),
                        ("bytes", Json::UInt(e.bytes)),
                    ])
                })),
            ),
            (
                "totals",
                Json::obj([
                    ("messages", Json::UInt(self.total_messages())),
                    ("bytes", Json::UInt(self.total_bytes())),
                    ("ops", Json::UInt(self.total_ops())),
                ]),
            ),
            (
                "ops",
                Json::Object(
                    self.ops
                        .iter()
                        .map(|o| (o.name.clone(), Json::UInt(o.count)))
                        .collect(),
                ),
            ),
            (
                "interactions",
                Json::Object(
                    self.interactions
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "leakage",
                Json::arr(self.leakage.iter().map(|l| Json::Str(l.clone()))),
            ),
            ("result_rows", Json::UInt(self.result_rows)),
            ("outcome", Json::Str(self.outcome.clone())),
            ("retries", Json::UInt(self.retries)),
            (
                "metrics",
                Json::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "plan",
                Json::arr(self.plan.iter().map(|n| {
                    Json::obj([
                        ("label", Json::Str(n.label.clone())),
                        ("protocol", Json::Str(n.protocol.clone())),
                        ("predicted_ops", Json::UInt(n.predicted_ops)),
                        ("observed_ops", Json::UInt(n.observed_ops)),
                        ("divergence_ppm", Json::UInt(n.divergence_ppm)),
                        ("result_rows", Json::UInt(n.result_rows)),
                    ])
                })),
            ),
        ])
    }

    /// The report as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== run report: {} ===\n", self.protocol));
        if !self.workload.is_empty() {
            let desc: Vec<String> = self
                .workload
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            out.push_str(&format!("workload: {}\n", desc.join(" ")));
        }
        out.push_str(&format!("result rows: {}\n", self.result_rows));
        if !self.outcome.is_empty() {
            out.push_str(&format!(
                "outcome: {} ({} retransmissions)\n",
                self.outcome, self.retries
            ));
        }

        if !self.phases.is_empty() {
            out.push('\n');
            let rows: Vec<[String; 3]> = self
                .phases
                .iter()
                .map(|p| [p.name.clone(), p.calls.to_string(), format_ns(p.wall_ns)])
                .collect();
            push_table(&mut out, &["phase", "calls", "wall"], &rows);
        }

        if !self.edges.is_empty() {
            out.push('\n');
            let mut rows: Vec<[String; 3]> = self
                .edges
                .iter()
                .map(|e| {
                    [
                        format!("{} -> {}", e.from, e.to),
                        e.messages.to_string(),
                        e.bytes.to_string(),
                    ]
                })
                .collect();
            rows.push([
                "total".to_string(),
                self.total_messages().to_string(),
                self.total_bytes().to_string(),
            ]);
            push_table(&mut out, &["edge", "msgs", "bytes"], &rows);
        }

        if !self.interactions.is_empty() {
            out.push('\n');
            let rows: Vec<[String; 2]> = self
                .interactions
                .iter()
                .map(|(k, v)| [k.clone(), v.to_string()])
                .collect();
            push_table(&mut out, &["mediator partner", "interactions"], &rows);
        }

        if !self.ops.is_empty() {
            out.push('\n');
            let mut rows: Vec<[String; 2]> = self
                .ops
                .iter()
                .map(|o| [o.name.clone(), o.count.to_string()])
                .collect();
            rows.push(["total".to_string(), self.total_ops().to_string()]);
            push_table(&mut out, &["primitive", "count"], &rows);
        }

        if !self.plan.is_empty() {
            out.push('\n');
            let rows: Vec<[String; 6]> = self
                .plan
                .iter()
                .map(|n| {
                    [
                        n.label.clone(),
                        n.protocol.clone(),
                        n.predicted_ops.to_string(),
                        n.observed_ops.to_string(),
                        n.divergence_ppm.to_string(),
                        n.result_rows.to_string(),
                    ]
                })
                .collect();
            push_table(
                &mut out,
                &[
                    "plan node",
                    "protocol",
                    "predicted",
                    "observed",
                    "ppm",
                    "rows",
                ],
                &rows,
            );
        }

        if !self.metrics.is_empty() {
            out.push('\n');
            let rows: Vec<[String; 2]> = self
                .metrics
                .iter()
                .map(|(k, v)| [k.clone(), v.to_string()])
                .collect();
            push_table(&mut out, &["metric", "value"], &rows);
        }

        if !self.leakage.is_empty() {
            out.push_str("\nleakage audit:\n");
            for line in &self.leakage {
                out.push_str(&format!("  {line}\n"));
            }
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Appends an aligned table: left-aligned first column, right-aligned rest.
fn push_table<const N: usize>(out: &mut String, header: &[&str; N], rows: &[[String; N]]) {
    let mut widths: [usize; N] = [0; N];
    for (i, h) in header.iter().enumerate() {
        widths[i] = h.chars().count();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let emit = |out: &mut String, cells: &[String; N]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i].saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                for _ in 0..pad {
                    out.push(' ');
                }
            } else {
                for _ in 0..pad {
                    out.push(' ');
                }
                out.push_str(cell);
            }
        }
        // Trim trailing padding on the last column.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: [String; N] = std::array::from_fn(|i| header[i].to_string());
    emit(out, &header_cells);
    let rule: [String; N] = std::array::from_fn(|i| "-".repeat(widths[i]));
    emit(out, &rule);
    for row in rows {
        emit(out, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Record, RecordKind};

    fn span_record(name: &str, start: u64, end: u64) -> Record {
        Record {
            id: 0,
            parent: None,
            name: name.to_string(),
            kind: RecordKind::Span {
                start_ns: start,
                end_ns: end,
            },
            thread: "t".to_string(),
            fields: Vec::new(),
        }
    }

    fn sample() -> RunReport {
        RunReport {
            protocol: "das".to_string(),
            workload: vec![("left_rows".to_string(), 40), ("seed".to_string(), 7)],
            phases: vec![
                PhaseStat {
                    name: "das.encryption".to_string(),
                    calls: 2,
                    wall_ns: 1_500_000,
                },
                PhaseStat {
                    name: "das.join".to_string(),
                    calls: 1,
                    wall_ns: 700,
                },
            ],
            edges: vec![
                EdgeStat {
                    from: "client".to_string(),
                    to: "mediator".to_string(),
                    messages: 3,
                    bytes: 120,
                },
                EdgeStat {
                    from: "mediator".to_string(),
                    to: "client".to_string(),
                    messages: 2,
                    bytes: 4096,
                },
            ],
            ops: vec![
                OpStat {
                    name: "hybrid-encrypt".to_string(),
                    count: 5,
                },
                OpStat {
                    name: "sha256".to_string(),
                    count: 40,
                },
            ],
            interactions: vec![("client".to_string(), 2)],
            leakage: vec!["mediator: 3 result sizes".to_string()],
            result_rows: 12,
            outcome: "recovered".to_string(),
            retries: 2,
            metrics: vec![
                ("run.result_rows".to_string(), 12),
                ("transport.frames".to_string(), 5),
            ],
            plan: vec![PlanNodeStat {
                label: "r1 ⨝ r2".to_string(),
                protocol: "pm".to_string(),
                predicted_ops: 220,
                observed_ops: 220,
                divergence_ppm: 0,
                result_rows: 12,
            }],
        }
    }

    #[test]
    fn totals_sum_edges_and_ops() {
        let r = sample();
        assert_eq!(r.total_messages(), 5);
        assert_eq!(r.total_bytes(), 4216);
        assert_eq!(r.total_ops(), 45);
    }

    #[test]
    fn phases_aggregate_by_name_in_first_start_order() {
        let records = vec![
            span_record("p.a", 0, 10),
            span_record("p.b", 10, 30),
            span_record("p.a", 30, 70),
            span_record("other", 0, 1),
        ];
        let phases = RunReport::phases_from_records(&records, Some("p."));
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "p.a");
        assert_eq!(phases[0].calls, 2);
        assert_eq!(phases[0].wall_ns, 50);
        assert_eq!(phases[1].name, "p.b");
        assert_eq!(phases[1].wall_ns, 20);
        let all = RunReport::phases_from_records(&records, None);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn json_has_all_sections() {
        let j = sample().to_json().render();
        for needle in [
            r#""protocol":"das""#,
            r#""left_rows":40"#,
            r#""name":"das.encryption""#,
            r#""from":"client""#,
            r#""totals":{"messages":5,"bytes":4216,"ops":45}"#,
            r#""hybrid-encrypt":5"#,
            r#""interactions":{"client":2}"#,
            r#""result_rows":12"#,
            r#""outcome":"recovered""#,
            r#""retries":2"#,
            r#""metrics":{"run.result_rows":12,"transport.frames":5}"#,
            r#""plan":[{"label":"r1 ⨝ r2","protocol":"pm","predicted_ops":220,"observed_ops":220,"divergence_ppm":0,"result_rows":12}]"#,
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn table_is_aligned() {
        let t = sample().render_table();
        assert!(t.contains("=== run report: das ==="));
        assert!(t.contains("workload: left_rows=40 seed=7"));
        assert!(t.contains("outcome: recovered (2 retransmissions)"));
        // Numeric columns right-align: header and rule share widths.
        let lines: Vec<&str> = t.lines().collect();
        let header = lines.iter().position(|l| l.starts_with("edge")).unwrap();
        assert!(lines[header + 1].starts_with("----"));
        assert!(t.contains("client -> mediator"));
        assert!(t.contains("total"));
        assert!(t.contains("1.500 ms"));
        assert!(t.contains("700 ns"));
        assert!(t.contains("transport.frames"));
        let plan_header = lines
            .iter()
            .position(|l| l.starts_with("plan node"))
            .unwrap();
        assert!(lines[plan_header + 1].starts_with("----"));
        assert!(t.contains("r1 ⨝ r2"));
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(12_340), "12.340 µs");
        assert_eq!(format_ns(12_340_000), "12.340 ms");
        assert_eq!(format_ns(2_500_000_000), "2.500 s");
    }

    #[test]
    fn empty_report_renders() {
        let r = RunReport::default();
        assert!(r.render_table().contains("result rows: 0"));
        assert!(r.to_json().render().contains(r#""phases":[]"#));
    }
}
