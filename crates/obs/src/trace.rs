//! Structured protocol tracing.
//!
//! A process-global, thread-safe trace buffer of hierarchical spans and
//! point events.  Spans open with [`span`] and close when their
//! [`SpanGuard`] drops; nesting is tracked per thread, so concurrent
//! parties produce correctly-parented records.  Timestamps are monotonic
//! nanoseconds since the first trace call of the process.
//!
//! The buffer is append-only between [`checkpoint`]/[`take_since`] pairs:
//! a protocol run records a checkpoint, executes, then collects exactly its
//! own records — even if other instrumented code ran before it.
//!
//! Records export as JSON-lines via [`export_jsonl`]: one JSON object per
//! record, suitable for `grep`, `jq`, or spreadsheet import.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::U64(v) => Json::UInt(*v),
            FieldValue::I64(v) => Json::Int(*v),
            FieldValue::F64(v) => Json::Float(*v),
            FieldValue::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Whether a record is a closed span or a point event.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKind {
    /// A span that opened at `start_ns` and closed at `end_ns`.
    Span { start_ns: u64, end_ns: u64 },
    /// An instantaneous event at `at_ns`.
    Event { at_ns: u64 },
}

/// One finished trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Unique id, process-global, assigned at open time.
    pub id: u64,
    /// The id of the span that was open on this thread when this record
    /// opened, if any.
    pub parent: Option<u64>,
    /// The span/event name, e.g. `"das.encryption"`.
    pub name: String,
    /// Span timing or event timestamp.
    pub kind: RecordKind,
    /// The thread the record was produced on (debug-formatted `ThreadId`).
    pub thread: String,
    /// Attached key/value fields, in attachment order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Record {
    /// Wall-clock duration for spans, zero for events.
    pub fn duration_ns(&self) -> u64 {
        match self.kind {
            RecordKind::Span { start_ns, end_ns } => end_ns.saturating_sub(start_ns),
            RecordKind::Event { .. } => 0,
        }
    }

    /// True if the record is a span (not an event).
    pub fn is_span(&self) -> bool {
        matches!(self.kind, RecordKind::Span { .. })
    }

    /// The record as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_string(), Json::UInt(self.id)),
            (
                "parent".to_string(),
                match self.parent {
                    Some(p) => Json::UInt(p),
                    None => Json::Null,
                },
            ),
            ("name".to_string(), Json::Str(self.name.clone())),
        ];
        match self.kind {
            RecordKind::Span { start_ns, end_ns } => {
                pairs.push(("kind".to_string(), Json::from("span")));
                pairs.push(("start_ns".to_string(), Json::UInt(start_ns)));
                pairs.push(("end_ns".to_string(), Json::UInt(end_ns)));
                pairs.push(("dur_ns".to_string(), Json::UInt(self.duration_ns())));
            }
            RecordKind::Event { at_ns } => {
                pairs.push(("kind".to_string(), Json::from("event")));
                pairs.push(("at_ns".to_string(), Json::UInt(at_ns)));
            }
        }
        pairs.push(("thread".to_string(), Json::Str(self.thread.clone())));
        if !self.fields.is_empty() {
            pairs.push((
                "fields".to_string(),
                Json::Object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::Object(pairs)
    }
}

static BUFFER: Mutex<Vec<Record>> = Mutex::new(Vec::new());
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static OPEN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Monotonic nanoseconds since the first trace call of the process.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

fn current_parent() -> Option<u64> {
    OPEN_STACK.with(|s| s.borrow().last().copied())
}

fn thread_name() -> String {
    format!("{:?}", std::thread::current().id())
}

/// Opens a span.  The span closes (and its record is appended to the global
/// buffer) when the returned guard drops.  Spans opened while this guard is
/// live on the same thread become its children.
pub fn span(name: &str) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_parent();
    OPEN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        record: Some(Record {
            id,
            parent,
            name: name.to_string(),
            kind: RecordKind::Span {
                start_ns: now_ns(),
                end_ns: 0,
            },
            thread: thread_name(),
            fields: Vec::new(),
        }),
    }
}

/// Records a point event under the currently open span (if any).
pub fn event(name: &str) {
    event_with::<&str, FieldValue>(name, []);
}

/// Records a point event with fields.
pub fn event_with<K, V>(name: &str, fields: impl IntoIterator<Item = (K, V)>)
where
    K: Into<String>,
    V: Into<FieldValue>,
{
    let record = Record {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent: current_parent(),
        name: name.to_string(),
        kind: RecordKind::Event { at_ns: now_ns() },
        thread: thread_name(),
        fields: fields
            .into_iter()
            .map(|(k, v)| (k.into(), v.into()))
            .collect(),
    };
    BUFFER.lock().unwrap().push(record);
}

/// An open span; closing happens on drop.
pub struct SpanGuard {
    record: Option<Record>,
}

impl SpanGuard {
    /// Attaches a key/value field to the span.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        if let Some(r) = self.record.as_mut() {
            r.fields.push((key.to_string(), value.into()));
        }
    }

    /// The span's id (usable as an explicit parent reference in analysis).
    pub fn id(&self) -> u64 {
        self.record.as_ref().map(|r| r.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut record) = self.record.take() else {
            return;
        };
        if let RecordKind::Span { ref mut end_ns, .. } = record.kind {
            *end_ns = now_ns();
        }
        OPEN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop innermost-first; tolerate out-of-order
            // drops by removing this id wherever it sits.
            if let Some(pos) = stack.iter().rposition(|&id| id == record.id) {
                stack.remove(pos);
            }
        });
        BUFFER.lock().unwrap().push(record);
    }
}

/// The current length of the trace buffer.  Pass to [`take_since`] to
/// collect only records appended after this point.
pub fn checkpoint() -> usize {
    BUFFER.lock().unwrap().len()
}

/// Removes and returns all records appended after `mark` (a value returned
/// by [`checkpoint`]).
pub fn take_since(mark: usize) -> Vec<Record> {
    let mut buf = BUFFER.lock().unwrap();
    if mark >= buf.len() {
        return Vec::new();
    }
    buf.split_off(mark)
}

/// A copy of every record currently buffered.
pub fn snapshot() -> Vec<Record> {
    BUFFER.lock().unwrap().clone()
}

/// Clears the buffer (ids keep increasing; the epoch is unchanged).
pub fn reset() {
    BUFFER.lock().unwrap().clear();
}

/// Renders records as JSON-lines: one compact JSON object per line.
pub fn export_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json().render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace buffer is process-global and the test harness runs tests
    // concurrently, so each test (a) holds a lock for the duration and
    // (b) filters to its own records by name prefix (the worker threads of
    // `concurrent_threads_do_not_cross_parent` may outlive its lock scope
    // on panic).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn mine(records: Vec<Record>, prefix: &str) -> Vec<Record> {
        records
            .into_iter()
            .filter(|r| r.name.starts_with(prefix))
            .collect()
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _serial = serial();
        let mark = checkpoint();
        {
            let _outer = span("t1.outer");
            {
                let _inner = span("t1.inner");
                event("t1.tick");
            }
        }
        let records = mine(take_since(mark), "t1.");
        assert_eq!(records.len(), 3);
        // Completion order: event first (inside inner), then inner, then outer.
        let tick = records.iter().find(|r| r.name == "t1.tick").unwrap();
        let inner = records.iter().find(|r| r.name == "t1.inner").unwrap();
        let outer = records.iter().find(|r| r.name == "t1.outer").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(tick.parent, Some(inner.id));
    }

    #[test]
    fn span_timing_is_monotone_and_contained() {
        let _serial = serial();
        let mark = checkpoint();
        {
            let _outer = span("t2.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = span("t2.inner");
        }
        let records = mine(take_since(mark), "t2.");
        let outer = records.iter().find(|r| r.name == "t2.outer").unwrap();
        let inner = records.iter().find(|r| r.name == "t2.inner").unwrap();
        let (
            RecordKind::Span {
                start_ns: os,
                end_ns: oe,
            },
            RecordKind::Span {
                start_ns: is_,
                end_ns: ie,
            },
        ) = (&outer.kind, &inner.kind)
        else {
            panic!("expected spans");
        };
        assert!(os <= oe);
        assert!(is_ <= ie);
        assert!(os <= is_ && ie <= oe, "inner contained in outer");
        assert!(outer.duration_ns() >= 2_000_000, "slept 2ms");
    }

    #[test]
    fn fields_attach_in_order() {
        let _serial = serial();
        let mark = checkpoint();
        {
            let mut s = span("t3.span");
            s.field("rows", 42u64);
            s.field("mode", "fast");
            s.field("delta", -3i64);
        }
        let records = mine(take_since(mark), "t3.");
        let fields = &records[0].fields;
        assert_eq!(fields[0], ("rows".to_string(), FieldValue::U64(42)));
        assert_eq!(
            fields[1],
            ("mode".to_string(), FieldValue::Str("fast".into()))
        );
        assert_eq!(fields[2], ("delta".to_string(), FieldValue::I64(-3)));
    }

    #[test]
    fn concurrent_threads_do_not_cross_parent() {
        let _serial = serial();
        let mark = checkpoint();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _outer = span(&format!("t4.outer{i}"));
                    for j in 0..3 {
                        let _inner = span(&format!("t4.inner{i}.{j}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let records = mine(take_since(mark), "t4.");
        assert_eq!(records.len(), 4 + 12);
        for i in 0..4 {
            let outer = records
                .iter()
                .find(|r| r.name == format!("t4.outer{i}"))
                .unwrap();
            assert_eq!(outer.parent, None);
            for j in 0..3 {
                let inner = records
                    .iter()
                    .find(|r| r.name == format!("t4.inner{i}.{j}"))
                    .unwrap();
                assert_eq!(
                    inner.parent,
                    Some(outer.id),
                    "inner{i}.{j} parented to its own thread's outer"
                );
                assert_eq!(inner.thread, outer.thread);
            }
        }
    }

    #[test]
    fn take_since_is_disjoint() {
        let _serial = serial();
        let mark1 = checkpoint();
        {
            let _a = span("t5.a");
        }
        let mark2 = checkpoint();
        {
            let _b = span("t5.b");
        }
        let second = mine(take_since(mark2), "t5.");
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].name, "t5.b");
        let first = mine(take_since(mark1), "t5.");
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].name, "t5.a");
    }

    #[test]
    fn jsonl_export_one_line_per_record() {
        let _serial = serial();
        let mark = checkpoint();
        {
            let mut s = span("t6.span");
            s.field("n", 1u64);
            event("t6.event");
        }
        let records = mine(take_since(mark), "t6.");
        let jsonl = export_jsonl(&records);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().any(|l| l.contains(r#""kind":"span""#)));
        assert!(lines.iter().any(|l| l.contains(r#""kind":"event""#)));
        assert!(
            lines.iter().any(|l| l.contains(r#""fields":{"n":1}"#)),
            "{jsonl}"
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn out_of_order_guard_drop_is_tolerated() {
        let _serial = serial();
        let mark = checkpoint();
        let a = span("t7.a");
        let b = span("t7.b");
        drop(a); // dropped before b, out of stack order
        {
            let _c = span("t7.c");
        }
        drop(b);
        let records = mine(take_since(mark), "t7.");
        let a = records.iter().find(|r| r.name == "t7.a").unwrap();
        let b = records.iter().find(|r| r.name == "t7.b").unwrap();
        let c = records.iter().find(|r| r.name == "t7.c").unwrap();
        assert_eq!(b.parent, Some(a.id));
        // After a's out-of-order removal, b is the innermost open span.
        assert_eq!(c.parent, Some(b.id));
    }
}
