//! The `BENCH_*.json` performance-trajectory file format.
//!
//! Every bench binary emits one file per suite under `target/bench/`,
//! named `BENCH_<suite>.json`; a committed `BENCH_core.json` at the repo
//! root is the baseline that `scripts/bench_check.sh` compares fresh
//! emissions against.  Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "core",
//!   "emitter": "report",
//!   "git_rev": "abc1234",
//!   "threads": 1,
//!   "benches": [
//!     {"name": "das/rows64", "unit": "ns",
//!      "samples": [..],
//!      "summary": {"mean": .., "median": .., "stddev": .., "min": .., "max": ..}}
//!   ],
//!   "metrics": {"deterministic": {..}, "timing": {..}}
//! }
//! ```
//!
//! `metrics` holds two [`crate::metrics::MetricsSnapshot`] JSON exports,
//! keeping the deterministic counters (comparable across machines) apart
//! from wall-clock data (comparable only against the same machine's
//! history).

use std::io;
use std::path::{Path, PathBuf};

use crate::json::{self, Json};
use crate::metrics::{Class, MetricsSnapshot};

/// Current schema version; bump when the layout changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// One named measurement series inside a trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Bench name, e.g. `"das/rows64"`.
    pub name: String,
    /// Unit of every sample, e.g. `"ns"` or `"bytes"`.
    pub unit: String,
    /// Raw samples in recording order.
    pub samples: Vec<f64>,
}

impl TrajectoryEntry {
    /// Summary statistics over the samples (all zero when empty).
    pub fn summary(&self) -> (f64, f64, f64, f64, f64) {
        if self.samples.is_empty() {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        (mean, median, var.sqrt(), min, max)
    }

    fn to_json(&self) -> Json {
        let (mean, median, stddev, min, max) = self.summary();
        Json::obj([
            ("name", Json::from(self.name.clone())),
            ("unit", Json::from(self.unit.clone())),
            (
                "samples",
                Json::arr(self.samples.iter().map(|&s| Json::Float(s))),
            ),
            (
                "summary",
                Json::obj([
                    ("mean", Json::Float(mean)),
                    ("median", Json::Float(median)),
                    ("stddev", Json::Float(stddev)),
                    ("min", Json::Float(min)),
                    ("max", Json::Float(max)),
                ]),
            ),
        ])
    }
}

/// A whole `BENCH_<suite>.json` file under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryFile {
    /// Suite name; determines the file name `BENCH_<suite>.json`.
    pub suite: String,
    /// The binary that produced the file, e.g. `"report"`.
    pub emitter: String,
    /// Git revision the measurements were taken at.
    pub git_rev: String,
    /// Worker thread count the suite ran with.
    pub threads: u64,
    /// The measurement series.
    pub benches: Vec<TrajectoryEntry>,
    /// Deterministic-class metrics snapshot (portable across machines).
    pub deterministic: MetricsSnapshot,
    /// Timing-class metrics snapshot (machine-local).
    pub timing: MetricsSnapshot,
}

/// The git revision to stamp into trajectory files: `BENCH_GIT_REV` if
/// set (CI pins it), else `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("BENCH_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl TrajectoryFile {
    /// An empty trajectory for `suite`, stamped with [`git_rev`].
    pub fn new(suite: &str, emitter: &str, threads: u64) -> Self {
        TrajectoryFile {
            suite: suite.to_string(),
            emitter: emitter.to_string(),
            git_rev: git_rev(),
            threads,
            benches: Vec::new(),
            deterministic: MetricsSnapshot::default(),
            timing: MetricsSnapshot::default(),
        }
    }

    /// Appends one measurement series.
    pub fn push(&mut self, name: &str, unit: &str, samples: Vec<f64>) {
        self.benches.push(TrajectoryEntry {
            name: name.to_string(),
            unit: unit.to_string(),
            samples,
        });
    }

    /// Attaches a metrics snapshot, split by class.
    pub fn set_metrics(&mut self, snapshot: &MetricsSnapshot) {
        self.deterministic = snapshot.only(Class::Deterministic);
        self.timing = snapshot.only(Class::Timing);
    }

    /// The whole file as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::UInt(SCHEMA_VERSION)),
            ("suite", Json::from(self.suite.clone())),
            ("emitter", Json::from(self.emitter.clone())),
            ("git_rev", Json::from(self.git_rev.clone())),
            ("threads", Json::UInt(self.threads)),
            (
                "benches",
                Json::arr(self.benches.iter().map(TrajectoryEntry::to_json)),
            ),
            (
                "metrics",
                Json::obj([
                    ("deterministic", self.deterministic.to_json()),
                    ("timing", self.timing.to_json()),
                ]),
            ),
        ])
    }

    /// The file name this suite serializes to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.suite)
    }

    /// Writes `dir/BENCH_<suite>.json` (pretty, trailing newline),
    /// creating `dir` if needed.  Returns the written path.
    pub fn write_under(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }
}

/// A schema violation found by [`validate`].
pub type SchemaError = String;

/// Validates a parsed `BENCH_*.json` document against schema version 1.
/// Returns every violation (empty ⇒ valid).
pub fn validate(doc: &Json) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    let Some(_) = doc.as_object() else {
        return vec!["document is not an object".to_string()];
    };
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("schema_version {v} != supported {SCHEMA_VERSION}")),
        None => errors.push("missing integer schema_version".to_string()),
    }
    for key in ["suite", "emitter", "git_rev"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            errors.push(format!("missing string {key}"));
        }
    }
    if doc.get("threads").and_then(Json::as_u64).is_none() {
        errors.push("missing integer threads".to_string());
    }
    match doc.get("benches").and_then(Json::as_array) {
        None => errors.push("missing array benches".to_string()),
        Some(benches) => {
            for (i, b) in benches.iter().enumerate() {
                let label = b
                    .get("name")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("benches[{i}]"));
                if b.get("name").and_then(Json::as_str).is_none() {
                    errors.push(format!("{label}: missing string name"));
                }
                if b.get("unit").and_then(Json::as_str).is_none() {
                    errors.push(format!("{label}: missing string unit"));
                }
                let samples = b.get("samples").and_then(Json::as_array);
                match samples {
                    None => errors.push(format!("{label}: missing array samples")),
                    Some(s) if s.iter().any(|v| v.as_f64().is_none()) => {
                        errors.push(format!("{label}: non-numeric sample"));
                    }
                    _ => {}
                }
                match b.get("summary").and_then(Json::as_object) {
                    None => errors.push(format!("{label}: missing object summary")),
                    Some(_) => {
                        for stat in ["mean", "median", "stddev", "min", "max"] {
                            if b.get("summary")
                                .and_then(|s| s.get(stat))
                                .and_then(Json::as_f64)
                                .is_none()
                            {
                                errors.push(format!("{label}: summary missing {stat}"));
                            }
                        }
                    }
                }
            }
        }
    }
    match doc.get("metrics").and_then(Json::as_object) {
        None => errors.push("missing object metrics".to_string()),
        Some(_) => {
            for class in ["deterministic", "timing"] {
                if doc
                    .get("metrics")
                    .and_then(|m| m.get(class))
                    .and_then(Json::as_object)
                    .is_none()
                {
                    errors.push(format!("metrics missing object {class}"));
                }
            }
        }
    }
    errors
}

/// Reads and validates a `BENCH_*.json` file; `Ok` carries the parsed
/// document, `Err` the list of problems.
pub fn load(path: &Path) -> Result<Json, Vec<SchemaError>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("{}: {e}", path.display())])?;
    let doc = json::parse(&text).map_err(|e| vec![format!("{}: {e}", path.display())])?;
    let errors = validate(&doc);
    if errors.is_empty() {
        Ok(doc)
    } else {
        Err(errors)
    }
}

/// The median of a named bench inside a parsed trajectory document.
pub fn bench_median(doc: &Json, name: &str) -> Option<f64> {
    doc.get("benches")?
        .as_array()?
        .iter()
        .find(|b| b.get("name").and_then(Json::as_str) == Some(name))?
        .get("summary")?
        .get("median")?
        .as_f64()
}

/// Every bench name inside a parsed trajectory document.
pub fn bench_names(doc: &Json) -> Vec<String> {
    doc.get("benches")
        .and_then(Json::as_array)
        .map(|benches| {
            benches
                .iter()
                .filter_map(|b| b.get("name").and_then(Json::as_str))
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn sample_file() -> TrajectoryFile {
        let mut f = TrajectoryFile::new("testsuite", "unit-test", 2);
        f.git_rev = "deadbee".to_string(); // pin: no git dependence in tests
        f.push("alpha/one", "ns", vec![10.0, 30.0, 20.0]);
        f.push("beta/two", "bytes", vec![512.0]);
        f
    }

    #[test]
    fn summary_statistics() {
        let f = sample_file();
        let (mean, median, stddev, min, max) = f.benches[0].summary();
        assert_eq!(mean, 20.0);
        assert_eq!(median, 20.0);
        assert!((stddev - 8.164965809).abs() < 1e-6);
        assert_eq!(min, 10.0);
        assert_eq!(max, 30.0);
        let empty = TrajectoryEntry {
            name: "e".into(),
            unit: "ns".into(),
            samples: vec![],
        };
        assert_eq!(empty.summary(), (0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn emitted_file_round_trips_and_validates() {
        let mut f = sample_file();
        metrics::counter(metrics::Class::Deterministic, "t.traj.frames").add(4);
        f.set_metrics(&metrics::snapshot());
        let doc = json::parse(&f.to_json().render_pretty()).expect("parse");
        assert_eq!(validate(&doc), Vec::<String>::new());
        assert_eq!(doc.get("suite").and_then(Json::as_str), Some("testsuite"));
        assert_eq!(doc.get("threads").and_then(Json::as_u64), Some(2));
        assert_eq!(bench_names(&doc), vec!["alpha/one", "beta/two"]);
        assert_eq!(bench_median(&doc, "alpha/one"), Some(20.0));
        assert_eq!(bench_median(&doc, "nope"), None);
        assert!(doc
            .get("metrics")
            .and_then(|m| m.get("deterministic"))
            .and_then(|d| d.get("counters"))
            .and_then(|c| c.get("t.traj.frames"))
            .and_then(Json::as_u64)
            .map(|v| v >= 4)
            .unwrap_or(false));
        // Timing data never leaks into the deterministic section.
        assert!(doc
            .get("metrics")
            .and_then(|m| m.get("timing"))
            .and_then(Json::as_object)
            .is_some());
    }

    #[test]
    fn validate_reports_each_violation() {
        let doc = json::parse(
            r#"{"schema_version":9,"suite":"s","threads":"x",
                "benches":[{"unit":"ns","samples":[1,"bad"]}]}"#,
        )
        .expect("parse");
        let errors = validate(&doc);
        let joined = errors.join("; ");
        for needle in [
            "schema_version 9",
            "missing string emitter",
            "missing string git_rev",
            "missing integer threads",
            "missing string name",
            "non-numeric sample",
            "missing object summary",
            "missing object metrics",
        ] {
            assert!(joined.contains(needle), "missing {needle:?} in {joined}");
        }
        assert_eq!(
            validate(&Json::Null),
            vec!["document is not an object".to_string()]
        );
    }

    #[test]
    fn write_under_creates_named_file() {
        let dir = std::env::temp_dir().join(format!("secmed-traj-{}", std::process::id()));
        let f = sample_file();
        let path = f.write_under(&dir).expect("write");
        assert!(path.ends_with("BENCH_testsuite.json"));
        let doc = load(&path).expect("valid file");
        assert_eq!(doc.get("git_rev").and_then(Json::as_str), Some("deadbee"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn load_rejects_invalid_schema() {
        let dir = std::env::temp_dir().join(format!("secmed-traj-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("BENCH_bad.json");
        std::fs::write(&path, "{\"schema_version\":1}").expect("write");
        let errors = load(&path).expect_err("schema errors");
        assert!(errors.iter().any(|e| e.contains("missing array benches")));
        assert!(load(&dir.join("BENCH_absent.json")).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
