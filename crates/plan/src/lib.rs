#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Cost- and leakage-aware query planner.
//!
//! The planner turns a multi-way join query into a typed
//! [`Plan`](secmed_core::plan::Plan): it builds the
//! [`QueryGraph`](relalg::sql::QueryGraph) of the SQL text, enumerates the
//! connected left-deep join orders, and for every join node scores each
//! candidate [`ProtocolKind`] by two criteria:
//!
//! 1. **Admissibility** — the protocol's Table 1 exposure profile
//!    ([`secmed_core::plan::exposure`]) must stay within the client's
//!    [`LeakageBudget`] (pointwise: whatever the protocol reveals must be
//!    permitted).
//! 2. **Cost** — among admissible candidates, the cheapest by the §6
//!    closed forms: [`predict`] over a [`WorkloadShape`] estimated from
//!    per-source [`SourceStats`], scored with the integer
//!    [`PredictedOps::weighted_cost`].
//!
//! The order with the lowest total cost wins; every tie (between orders or
//! between protocols) breaks lexicographically, so planning is a pure
//! function of `(query, schemas, stats, budget, candidates)` and the
//! emitted plan is byte-identical across runs and platforms.  Execution
//! lives in core ([`secmed_core::Engine::run_plan`]); this crate never
//! touches a transport or a key.

use std::collections::BTreeMap;

use relalg::sql::{self, QueryGraph};
use relalg::{RelError, Relation, Schema};
use secmed_core::cost::{predict, PredictedOps, WorkloadShape};
use secmed_core::plan::{exposure, LeakageBudget, NodeInput, Plan, PlanNode};
use secmed_core::{CommutativeConfig, DasConfig, PmConfig, ProtocolKind};

/// Planning-time statistics of one source relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceStats {
    /// Row count (after any access-control filtering the caller expects).
    pub rows: u64,
    /// Active-domain size per attribute.
    pub domains: BTreeMap<String, u64>,
}

impl SourceStats {
    /// Exact statistics of a concrete relation.
    pub fn of(relation: &Relation) -> Self {
        let mut domains = BTreeMap::new();
        for name in relation.schema().attr_names() {
            // `name` comes from the relation's own schema, so the lookup
            // cannot fail.
            let dom = relation
                .active_domain(name)
                .expect("attribute from the relation's own schema");
            domains.insert(name.to_string(), dom.len() as u64);
        }
        SourceStats {
            rows: relation.len() as u64,
            domains,
        }
    }
}

/// Exact statistics for a whole catalog of relations.
pub fn stats_of(relations: &BTreeMap<String, Relation>) -> BTreeMap<String, SourceStats> {
    relations
        .iter()
        .map(|(name, rel)| (name.clone(), SourceStats::of(rel)))
        .collect()
}

/// Why planning failed.
#[derive(Debug)]
pub enum PlanError {
    /// Parsing or analysis of the SQL text failed.
    Rel(RelError),
    /// A table in the query has no entry in the statistics map.
    MissingStats(String),
    /// The query's join graph does not connect all tables (or joins fewer
    /// than two), so no left-deep order without a cross product exists.
    Disconnected(String),
    /// Some join node admits no candidate protocol under the budget.
    NoAdmissibleProtocol {
        /// The join that could not be planned, e.g. `"t0 ⨝ t1"`.
        node: String,
        /// Per-candidate explanation of what the budget refused.
        details: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Rel(e) => write!(f, "query error: {e}"),
            PlanError::MissingStats(t) => write!(f, "no statistics for table {t}"),
            PlanError::Disconnected(m) => write!(f, "join graph not connected: {m}"),
            PlanError::NoAdmissibleProtocol { node, details } => {
                write!(f, "no admissible protocol for {node}: {details}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for PlanError {
    fn from(e: RelError) -> Self {
        PlanError::Rel(e)
    }
}

/// Estimated shape of an intermediate result while simulating an order.
#[derive(Debug, Clone)]
struct Est {
    rows: u64,
    domains: BTreeMap<String, u64>,
}

impl Est {
    fn of(stats: &SourceStats) -> Est {
        Est {
            rows: stats.rows,
            domains: stats.domains.clone(),
        }
    }

    /// Estimated active-domain size of the (possibly composite) join key:
    /// the product of per-attribute domains, capped by the row count.
    fn key_domain(&self, attrs: &[String]) -> u64 {
        let mut d: u64 = 1;
        for a in attrs {
            d = d.saturating_mul(self.domains.get(a).copied().unwrap_or(0));
        }
        d.min(self.rows)
    }
}

/// The textbook equi-join size estimate: `|L| · |R| / max(dom_L, dom_R)`.
fn join_rows(left: &Est, right: &Est, attrs: &[String]) -> u64 {
    let d = left.key_domain(attrs).max(right.key_domain(attrs)).max(1);
    left.rows.saturating_mul(right.rows) / d
}

/// Budget flags a protocol's exposure exceeds, in Table 1 vocabulary.
fn violations(budget: &LeakageBudget, e: &LeakageBudget) -> Vec<&'static str> {
    let mut v = Vec::new();
    if e.mediator_result_sizes && !budget.mediator_result_sizes {
        v.push("mediator:result-sizes");
    }
    if e.mediator_domain_sizes && !budget.mediator_domain_sizes {
        v.push("mediator:domain-sizes");
    }
    if e.mediator_intersection_size && !budget.mediator_intersection_size {
        v.push("mediator:intersection-size");
    }
    if e.plaintext_index_tables && !budget.plaintext_index_tables {
        v.push("mediator:plaintext-index-tables");
    }
    if e.client_superset && !budget.client_superset {
        v.push("client:superset");
    }
    if e.client_extra_ciphertexts && !budget.client_extra_ciphertexts {
        v.push("client:extra-ciphertexts");
    }
    v
}

/// The cost- and leakage-aware planner.
///
/// Candidate protocols are scored in vector order; ties in weighted cost
/// go to the earlier candidate, so the candidate order is part of the
/// planner's deterministic configuration.
#[derive(Debug, Clone)]
pub struct Planner {
    /// Protocol configurations considered for every join node.
    pub candidates: Vec<ProtocolKind>,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    /// A planner over the three paper protocols in their default
    /// configurations (DAS client setting, commutative, private matching).
    pub fn new() -> Self {
        Planner {
            candidates: vec![
                ProtocolKind::Das(DasConfig::default()),
                ProtocolKind::Commutative(CommutativeConfig::default()),
                ProtocolKind::Pm(PmConfig::default()),
            ],
        }
    }

    /// A planner restricted to the given candidate configurations.
    pub fn with_candidates(candidates: Vec<ProtocolKind>) -> Self {
        Planner { candidates }
    }

    /// Plans `sql_text` against base-relation `schemas` and per-source
    /// `stats` under `budget`.
    ///
    /// The emitted [`Plan`] is left-deep: node `i` joins the running
    /// intermediate result with one base table, with the protocol chosen
    /// per node.  Errors if the query parses but has no connected
    /// two-plus-table join, if a table lacks statistics, or if some node
    /// admits no protocol under the budget.
    pub fn plan(
        &self,
        sql_text: &str,
        schemas: &BTreeMap<String, Schema>,
        stats: &BTreeMap<String, SourceStats>,
        budget: LeakageBudget,
    ) -> Result<Plan, PlanError> {
        let tree = sql::parse(sql_text)?;
        let graph = sql::query_graph(&tree, schemas)?;
        if graph.tables.len() < 2 {
            return Err(PlanError::Disconnected(
                "query joins fewer than two tables".to_string(),
            ));
        }
        for t in &graph.tables {
            if !stats.contains_key(t) {
                return Err(PlanError::MissingStats(t.clone()));
            }
        }

        let orders = connected_orders(&graph);
        if orders.is_empty() {
            return Err(PlanError::Disconnected(format!(
                "no left-deep order joins {{{}}} without a cross product",
                graph.tables.join(", ")
            )));
        }

        // Score every order; keep the cheapest, ties broken by the
        // lexicographically first table sequence.
        let mut best: Option<(u64, Vec<String>, Vec<PlanNode>)> = None;
        let mut last_err: Option<PlanError> = None;
        for order in &orders {
            match self.plan_order(&graph, stats, &budget, order) {
                Ok((cost, nodes)) => {
                    let better = match &best {
                        None => true,
                        Some((bc, bo, _)) => cost < *bc || (cost == *bc && *order < *bo),
                    };
                    if better {
                        best = Some((cost, order.clone(), nodes));
                    }
                }
                Err(e) => last_err = Some(e),
            }
        }
        let (_, _, nodes) = best.ok_or_else(|| {
            // Every order failed; surface the last (budget) error.
            last_err
                .unwrap_or_else(|| PlanError::Disconnected("no plannable join order".to_string()))
        })?;

        Ok(Plan {
            query: sql_text.to_string(),
            tables: graph.tables.clone(),
            scan_preds: graph.scan_preds.clone(),
            nodes,
            residual: graph.residual.clone(),
            budget,
        })
    }

    /// Builds and scores the node list for one table order.
    fn plan_order(
        &self,
        graph: &QueryGraph,
        stats: &BTreeMap<String, SourceStats>,
        budget: &LeakageBudget,
        order: &[String],
    ) -> Result<(u64, Vec<PlanNode>), PlanError> {
        let mut nodes: Vec<PlanNode> = Vec::new();
        let mut total: u64 = 0;
        let mut current = Est::of(&stats[&order[0]]);
        let mut current_name = order[0].clone();
        for (i, table) in order.iter().enumerate().skip(1) {
            let right = Est::of(&stats[table]);
            let attrs = attrs_to_set(graph, &order[..i], table);
            let est_rows = join_rows(&current, &right, &attrs);
            let shape = WorkloadShape {
                left_rows: current.rows as usize,
                right_rows: right.rows as usize,
                left_domain: current.key_domain(&attrs) as usize,
                right_domain: right.key_domain(&attrs) as usize,
                intersection: current.key_domain(&attrs).min(right.key_domain(&attrs)) as usize,
                // DAS server-result estimate: the join size (optimistic —
                // bucket collisions only add rows; the executed plan
                // recomputes the exact prediction from the observed size).
                server_result: est_rows as usize,
            };
            let label = format!("{current_name} ⨝ {table}");
            let (protocol, predicted, rationale, cost) = self.choose(budget, &shape, &label)?;
            total = total.saturating_add(cost);
            nodes.push(PlanNode {
                left: if i == 1 {
                    NodeInput::Source(order[0].clone())
                } else {
                    NodeInput::Node(i - 2)
                },
                right: NodeInput::Source(table.clone()),
                attrs: attrs.clone(),
                protocol,
                predicted,
                estimated_rows: est_rows,
                rationale,
            });
            // Merge the estimate for the parent node: join attributes keep
            // the smaller domain, everything else carries over; domains
            // never exceed the estimated row count.
            let mut domains = current.domains.clone();
            for (a, d) in &right.domains {
                let merged = match domains.get(a) {
                    Some(existing) => (*existing).min(*d),
                    None => *d,
                };
                domains.insert(a.clone(), merged);
            }
            for d in domains.values_mut() {
                *d = (*d).min(est_rows);
            }
            current = Est {
                rows: est_rows,
                domains,
            };
            current_name = format!("{current_name}_{table}");
        }
        Ok((total, nodes))
    }

    /// Picks the cheapest admissible candidate for one node.
    fn choose(
        &self,
        budget: &LeakageBudget,
        shape: &WorkloadShape,
        label: &str,
    ) -> Result<(ProtocolKind, PredictedOps, String, u64), PlanError> {
        let mut verdicts: Vec<String> = Vec::new();
        let mut winner: Option<(ProtocolKind, PredictedOps, u64)> = None;
        for kind in &self.candidates {
            let vs = violations(budget, &exposure(kind));
            if vs.is_empty() {
                let predicted = predict(kind, shape);
                let cost = predicted.weighted_cost();
                verdicts.push(format!("{}: cost {cost}", kind.key()));
                if winner.as_ref().map(|(_, _, c)| cost < *c).unwrap_or(true) {
                    winner = Some((*kind, predicted, cost));
                }
            } else {
                verdicts.push(format!("{}: inadmissible[{}]", kind.key(), vs.join(",")));
            }
        }
        match winner {
            Some((kind, predicted, cost)) => {
                let rationale = format!("{} wins ({})", kind.key(), verdicts.join("; "));
                Ok((kind, predicted, rationale, cost))
            }
            None => Err(PlanError::NoAdmissibleProtocol {
                node: label.to_string(),
                details: verdicts.join("; "),
            }),
        }
    }
}

/// Join attributes between `table` and the already-joined `set`: the
/// sorted union of every edge's attributes.  Empty means joining `table`
/// next would be a cross product.
fn attrs_to_set(graph: &QueryGraph, set: &[String], table: &str) -> Vec<String> {
    let mut attrs: Vec<String> = Vec::new();
    for s in set {
        if let Some(edge) = graph.edge_attrs(s, table) {
            for a in edge {
                if !attrs.contains(a) {
                    attrs.push(a.clone());
                }
            }
        }
    }
    attrs.sort();
    attrs
}

/// All left-deep orders where every table after the first shares a join
/// edge with some earlier table (no cross products), in lexicographic
/// order of the table sequence.
fn connected_orders(graph: &QueryGraph) -> Vec<Vec<String>> {
    let mut orders = Vec::new();
    let mut tables = graph.tables.clone();
    tables.sort();
    for start in &tables {
        let mut prefix = vec![start.clone()];
        extend_orders(graph, &tables, &mut prefix, &mut orders);
    }
    orders
}

fn extend_orders(
    graph: &QueryGraph,
    tables: &[String],
    prefix: &mut Vec<String>,
    orders: &mut Vec<Vec<String>>,
) {
    if prefix.len() == tables.len() {
        orders.push(prefix.clone());
        return;
    }
    for t in tables {
        if prefix.contains(t) {
            continue;
        }
        if attrs_to_set(graph, prefix, t).is_empty() {
            continue;
        }
        prefix.push(t.clone());
        extend_orders(graph, tables, prefix, orders);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::Type;

    /// Chain schemas t0(k0,v0), t1(k0,k1,v1), t2(k1,k2,v2).
    fn chain_schemas() -> BTreeMap<String, Schema> {
        let mut m = BTreeMap::new();
        m.insert(
            "t0".to_string(),
            Schema::new(&[("k0", Type::Int), ("v0", Type::Int)]),
        );
        m.insert(
            "t1".to_string(),
            Schema::new(&[("k0", Type::Int), ("k1", Type::Int), ("v1", Type::Int)]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(&[("k1", Type::Int), ("k2", Type::Int), ("v2", Type::Int)]),
        );
        m
    }

    fn chain_stats(rows: [u64; 3], key_dom: u64) -> BTreeMap<String, SourceStats> {
        let mut m = BTreeMap::new();
        for (i, r) in rows.iter().enumerate() {
            let mut domains = BTreeMap::new();
            if i > 0 {
                domains.insert(format!("k{}", i - 1), key_dom.min(*r));
            }
            domains.insert(format!("k{i}"), key_dom.min(*r));
            domains.insert(format!("v{i}"), *r);
            m.insert(format!("t{i}"), SourceStats { rows: *r, domains });
        }
        m
    }

    const CHAIN_SQL: &str = "select * from t0 natural join t1 natural join t2";

    #[test]
    fn chain_plan_is_left_deep_and_deterministic() {
        let planner = Planner::new();
        let schemas = chain_schemas();
        let stats = chain_stats([20, 30, 40], 8);
        let a = planner
            .plan(CHAIN_SQL, &schemas, &stats, LeakageBudget::open())
            .unwrap();
        let b = planner
            .plan(CHAIN_SQL, &schemas, &stats, LeakageBudget::open())
            .unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.nodes.len(), 2);
        // Node 1 always consumes node 0's result (left-deep arena).
        assert_eq!(a.nodes[1].left, NodeInput::Node(0));
        for n in &a.nodes {
            assert_eq!(n.attrs.len(), 1, "chain joins on one key: {n:?}");
            assert!(!n.rationale.is_empty());
        }
    }

    #[test]
    fn budget_restricts_protocol_choice() {
        let planner = Planner::new();
        let schemas = chain_schemas();
        let stats = chain_stats([20, 30, 40], 8);
        // Only DAS-shaped leakage permitted → every node runs DAS.
        let das_only = LeakageBudget {
            mediator_domain_sizes: false,
            mediator_intersection_size: false,
            client_extra_ciphertexts: false,
            ..LeakageBudget::open()
        };
        let plan = planner.plan(CHAIN_SQL, &schemas, &stats, das_only).unwrap();
        for n in &plan.nodes {
            assert_eq!(n.protocol.key(), "das", "{}", n.rationale);
            assert!(n.rationale.contains("inadmissible"));
        }
        // Nothing permitted → typed refusal naming the candidates.
        let err = planner
            .plan(
                CHAIN_SQL,
                &schemas,
                &stats,
                LeakageBudget::exact_result_only(),
            )
            .unwrap_err();
        match err {
            PlanError::NoAdmissibleProtocol { details, .. } => {
                for key in ["das", "commutative", "pm"] {
                    assert!(details.contains(key), "{details}");
                }
            }
            other => panic!("expected NoAdmissibleProtocol, got {other:?}"),
        }
    }

    #[test]
    fn tightening_the_budget_flips_a_node() {
        // Commutative vs PM head-to-head: under an open budget the
        // planner may pick either by cost; refusing the intersection size
        // forces PM everywhere.
        let planner = Planner::with_candidates(vec![
            ProtocolKind::Commutative(CommutativeConfig::default()),
            ProtocolKind::Pm(PmConfig::default()),
        ]);
        let schemas = chain_schemas();
        let stats = chain_stats([20, 30, 40], 8);
        let open = planner
            .plan(CHAIN_SQL, &schemas, &stats, LeakageBudget::open())
            .unwrap();
        assert!(open.nodes.iter().any(|n| n.protocol.key() == "commutative"));
        let tight = LeakageBudget {
            mediator_intersection_size: false,
            ..LeakageBudget::open()
        };
        let flipped = planner.plan(CHAIN_SQL, &schemas, &stats, tight).unwrap();
        assert!(flipped.nodes.iter().all(|n| n.protocol.key() == "pm"));
    }

    #[test]
    fn missing_stats_and_single_table_are_typed_errors() {
        let planner = Planner::new();
        let schemas = chain_schemas();
        let mut stats = chain_stats([20, 30, 40], 8);
        stats.remove("t1");
        assert!(matches!(
            planner.plan(CHAIN_SQL, &schemas, &stats, LeakageBudget::open()),
            Err(PlanError::MissingStats(t)) if t == "t1"
        ));
        let stats = chain_stats([20, 30, 40], 8);
        assert!(matches!(
            planner.plan("select * from t0", &schemas, &stats, LeakageBudget::open()),
            Err(PlanError::Disconnected(_))
        ));
    }

    #[test]
    fn orders_never_cross_product() {
        // t0–t1 and t1–t2 are the only edges: no order may put t0 and t2
        // adjacent without t1 already in the set.
        let schemas = chain_schemas();
        let tree = sql::parse(CHAIN_SQL).unwrap();
        let graph = sql::query_graph(&tree, &schemas).unwrap();
        let orders = connected_orders(&graph);
        assert!(!orders.is_empty());
        for order in &orders {
            for i in 1..order.len() {
                assert!(
                    !attrs_to_set(&graph, &order[..i], &order[i]).is_empty(),
                    "cross product in {order:?}"
                );
            }
        }
        assert!(!orders.iter().any(|o| o[0] == "t0" && o[1] == "t2"));
    }

    #[test]
    fn source_stats_reads_exact_domains() {
        use relalg::Value;
        let rel = Relation::build(
            Schema::new(&[("k", Type::Int), ("v", Type::Int)]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        let s = SourceStats::of(&rel);
        assert_eq!(s.rows, 3);
        assert_eq!(s.domains["k"], 2);
        assert_eq!(s.domains["v"], 2);
    }
}
