#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `secmed-pool` — a deterministic fork-join thread pool for ciphertext
//! processing.
//!
//! The protocol hot paths (SRA double encryption, Paillier coefficient
//! encryption, per-tuple polynomial evaluation, DAS bucketization) are
//! embarrassingly data-parallel *per item*, but a mediation run must stay
//! replayable: the same scenario seed has to produce the same `RunReport`
//! byte for byte at any thread count.  This crate therefore provides only
//! structured, order-preserving parallelism:
//!
//! * [`Pool::par_map`] / [`Pool::try_par_map`] — map over a slice, results
//!   collected in input order; the fallible variant propagates the error of
//!   the smallest input index (independent of scheduling).
//! * [`Pool::par_chunks`] — map over contiguous chunks, results
//!   concatenated in input order (for nested-loop work like the DAS server
//!   join, where per-item spawning would be too fine-grained).
//!
//! Work is split into at most `threads` *contiguous* chunks executed on
//! [`std::thread::scope`] workers (the calling thread runs the first
//! chunk).  There is no work stealing and no shared mutable state: which
//! worker computes an item never affects *what* is computed, only when.
//! Callers that need randomness must give every item its own derived
//! stream (see `secmed_crypto::drbg::DrbgFamily`) — never a shared RNG,
//! whose draw order would depend on the schedule.
//!
//! With `threads <= 1` (or a single item) everything degrades to a plain
//! sequential loop on the calling thread — no threads are spawned, so the
//! sequential path is also the zero-overhead baseline the scaling bench
//! compares against.
//!
//! The crate is std-only, `forbid(unsafe_code)`, and contains no clocks,
//! sockets, or channels — the repo lint enforces that scoped threads stay
//! in here and wall-clock reads stay in `crates/obs`/`crates/bench`.
//! Every fan-out reports deterministic-class metrics (`pool.calls`,
//! `pool.items`, `pool.chunks`, `pool.chunk_items`) to the
//! `secmed_obs::metrics` registry; the counts depend only on workload
//! size and thread budget, never on scheduling.

use std::ops::Range;
use std::sync::OnceLock;

use secmed_obs::metrics::{self, Class, Counter, Histogram};

/// Deterministic-class pool instrumentation: how often the pool is
/// entered, how many items it fans out, and the chunk-size distribution.
/// Handles are interned once; the hot path pays one relaxed atomic add
/// per field.  All values are pure functions of the workload and the
/// thread budget, never of scheduling.
struct PoolMetrics {
    calls: Counter,
    items: Counter,
    chunks: Counter,
    chunk_items: Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        calls: metrics::counter(Class::Deterministic, "pool.calls"),
        items: metrics::counter(Class::Deterministic, "pool.items"),
        chunks: metrics::counter(Class::Deterministic, "pool.chunks"),
        chunk_items: metrics::histogram(Class::Deterministic, "pool.chunk_items"),
    })
}

fn record_fanout(len: usize, ranges: &[Range<usize>]) {
    let m = pool_metrics();
    m.calls.incr();
    m.items.add(len as u64);
    m.chunks.add(ranges.len() as u64);
    for r in ranges {
        m.chunk_items.observe((r.end - r.start) as u64);
    }
}

/// How a protocol run executes: the worker-thread budget.
///
/// This is the execution half of `RunOptions` in `secmed-core`; it is
/// defined here so the crypto and DAS layers can accept a policy without
/// depending on the protocol crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    threads: usize,
}

impl ExecPolicy {
    /// Single-threaded execution (the default).
    pub fn sequential() -> Self {
        ExecPolicy { threads: 1 }
    }

    /// Up to `threads` workers; `0` is treated as `1`.
    pub fn threads(threads: usize) -> Self {
        ExecPolicy {
            threads: threads.max(1),
        }
    }

    /// The worker budget (always at least 1).
    pub fn thread_count(&self) -> usize {
        self.threads
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::sequential()
    }
}

/// A fork-join executor with a fixed worker budget.
///
/// Creating a `Pool` allocates nothing and spawns nothing: scoped worker
/// threads exist only for the duration of each `par_*` call.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool following `policy`.
    pub fn new(policy: ExecPolicy) -> Self {
        Pool {
            threads: policy.thread_count(),
        }
    }

    /// A single-threaded pool: every `par_*` call runs sequentially.
    pub fn sequential() -> Self {
        Pool::new(ExecPolicy::sequential())
    }

    /// A pool with up to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Pool::new(ExecPolicy::threads(threads))
    }

    /// The worker budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, preserving input order.
    ///
    /// `f` receives the item's index alongside the item so callers can
    /// derive per-item randomness streams from it.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let mapped = self.try_par_map(items, |i, t| Ok::<U, Unreachable>(f(i, t)));
        match mapped {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }

    /// Maps a fallible `f` over `items`, preserving input order and
    /// propagating the error of the *smallest* failing index.
    ///
    /// Every chunk stops at its own first error; chunks are not cancelled
    /// across workers, so which error is returned never depends on the
    /// schedule.
    pub fn try_par_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<U, E> + Sync,
    {
        let run_range =
            |range: Range<usize>| -> Result<Vec<U>, E> { range.map(|i| f(i, &items[i])).collect() };
        let ranges = chunk_ranges(items.len(), self.threads);
        record_fanout(items.len(), &ranges);
        if ranges.len() <= 1 {
            return run_range(0..items.len());
        }
        let per_chunk: Vec<Result<Vec<U>, E>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges[1..]
                .iter()
                .map(|r| {
                    let r = r.clone();
                    scope.spawn(|| run_range(r))
                })
                .collect();
            // The calling thread works the first chunk while the scoped
            // workers run the rest.
            let mut results = vec![run_range(ranges[0].clone())];
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            results
        });
        // Chunks are contiguous and ordered, so scanning them in order
        // yields both order-preserving concatenation and first-error
        // semantics.
        let mut out = Vec::with_capacity(items.len());
        for chunk in per_chunk {
            out.extend(chunk?);
        }
        Ok(out)
    }

    /// Maps `f` over contiguous chunks of `items` and concatenates the
    /// per-chunk outputs in input order.
    ///
    /// `f` receives the chunk's starting offset in `items`.  Use this when
    /// each item produces a variable number of outputs (e.g. a nested-loop
    /// join) or when per-item closures would be too fine-grained.
    pub fn par_chunks<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        let ranges = chunk_ranges(items.len(), self.threads);
        record_fanout(items.len(), &ranges);
        if ranges.len() <= 1 {
            return f(0, items);
        }
        let f = &f;
        let per_chunk: Vec<Vec<U>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges[1..]
                .iter()
                .map(|r| {
                    let r = r.clone();
                    scope.spawn(move || f(r.start, &items[r]))
                })
                .collect();
            let first = ranges[0].clone();
            let mut results = vec![f(first.start, &items[first])];
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            results
        });
        per_chunk.into_iter().flatten().collect()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::sequential()
    }
}

/// Runs `f` inside a structured thread scope and returns its result.
///
/// This is the crate's second primitive, for *long-lived* workers that
/// a fork-join `par_*` call cannot model: a server's accept loop and its
/// per-connection handlers.  Like `par_*`, it is structured — every
/// spawned worker is joined before `scope` returns, so no thread
/// outlives its borrows — and it keeps raw `std::thread` naming inside
/// this crate, where the determinism lint can audit it.  Callers must
/// not let scheduling order influence *what* is computed, only when;
/// anything feeding a `RunReport` still goes through the ordered
/// fork-join API.
pub fn scope<'env, T, F>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

pub use std::thread::{Scope, ScopedJoinHandle};

/// An uninhabited error type: lets `par_map` reuse `try_par_map` without
/// an unwrap on a path that cannot fail.
enum Unreachable {}

/// Splits `0..len` into at most `threads` contiguous, balanced ranges
/// (the first `len % threads` ranges get one extra item).  Returns fewer
/// ranges than `threads` when there are fewer items than workers, and a
/// single range for sequential execution.
fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    let workers = threads.clamp(1, len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once_and_stay_contiguous() {
        for len in [0usize, 1, 2, 7, 8, 9, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, threads);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start, "len={len} threads={threads}");
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len, "len={len} threads={threads}");
                assert!(ranges.len() <= threads.max(1));
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                if let (Some(max), Some(min)) = (sizes.iter().max(), sizes.iter().min()) {
                    assert!(max - min <= 1, "unbalanced {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1usize, 2, 3, 8, 128] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.par_map(&items, |_, x| x * x), expected, "{threads}");
        }
    }

    #[test]
    fn par_map_passes_matching_indices() {
        let items: Vec<u64> = (100..200).collect();
        let pool = Pool::with_threads(4);
        let idx = pool.par_map(&items, |i, x| (i as u64, *x));
        for (i, (seen, x)) in idx.iter().enumerate() {
            assert_eq!(*seen, i as u64);
            assert_eq!(*x, 100 + i as u64);
        }
    }

    #[test]
    fn try_par_map_returns_first_error_by_index() {
        let items: Vec<u64> = (0..64).collect();
        // Items 7 and 50 fail — the reported error must always be 7's,
        // even though 50 lives in a later chunk that may finish first.
        for threads in [1usize, 2, 8] {
            let pool = Pool::with_threads(threads);
            let out: Result<Vec<u64>, String> = pool.try_par_map(&items, |i, x| {
                if i == 7 || i == 50 {
                    Err(format!("bad index {i}"))
                } else {
                    Ok(*x)
                }
            });
            assert_eq!(out, Err("bad index 7".to_string()), "{threads}");
        }
    }

    #[test]
    fn try_par_map_ok_path_matches_sequential() {
        let items: Vec<u64> = (0..33).collect();
        let seq: Result<Vec<u64>, ()> = Pool::sequential().try_par_map(&items, |_, x| Ok(x + 1));
        let par: Result<Vec<u64>, ()> = Pool::with_threads(8).try_par_map(&items, |_, x| Ok(x + 1));
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_concatenates_in_order_with_correct_offsets() {
        let items: Vec<usize> = (0..50).collect();
        for threads in [1usize, 3, 7, 64] {
            let pool = Pool::with_threads(threads);
            let out = pool.par_chunks(&items, |offset, chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(k, v)| {
                        assert_eq!(offset + k, *v, "offset must locate the chunk");
                        v * 10
                    })
                    .collect()
            });
            let expected: Vec<usize> = items.iter().map(|v| v * 10).collect();
            assert_eq!(out, expected, "{threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_never_spawn() {
        let pool = Pool::with_threads(8);
        let empty: Vec<u64> = Vec::new();
        assert!(pool.par_map(&empty, |_, x: &u64| *x).is_empty());
        assert_eq!(pool.par_map(&[42u64], |_, x| *x), vec![42]);
        assert!(pool
            .par_chunks(&empty, |_, c: &[u64]| c.to_vec())
            .is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let pool = Pool::with_threads(64);
        let items: Vec<u64> = (0..5).collect();
        assert_eq!(pool.par_map(&items, |_, x| x * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn fanout_metrics_count_calls_items_and_chunks() {
        // The registry is process-global and other pool tests run
        // concurrently in this binary, so assert deltas as lower bounds.
        let before = secmed_obs::metrics::snapshot();
        let pool = Pool::with_threads(4);
        let items: Vec<u64> = (0..40).collect();
        let _ = pool.par_map(&items, |_, x| *x);
        let _ = pool.par_chunks(&items, |_, c| c.to_vec());
        let delta = secmed_obs::metrics::snapshot().since(&before);
        assert!(delta.counter("pool.calls") >= 2);
        assert!(delta.counter("pool.items") >= 80);
        assert!(delta.counter("pool.chunks") >= 8, "4 chunks per call");
        let h = delta.histogram("pool.chunk_items").expect("chunk sizes");
        assert!(h.count() >= 8);
        assert!(h.max() >= 10, "40 items over 4 workers: 10 per chunk");
    }

    #[test]
    fn scope_joins_workers_and_returns_the_closure_result() {
        let mut counters = [0u64; 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = counters
                .iter_mut()
                .enumerate()
                .map(|(i, c)| s.spawn(move || *c = i as u64 + 1))
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
            21 + 21
        });
        assert_eq!(total, 42);
        // Every worker ran and was joined inside the scope.
        assert_eq!(counters, [1, 2, 3, 4]);
    }

    #[test]
    fn policy_clamps_zero_to_sequential() {
        assert_eq!(ExecPolicy::threads(0).thread_count(), 1);
        assert_eq!(Pool::new(ExecPolicy::threads(0)).threads(), 1);
        assert_eq!(ExecPolicy::default(), ExecPolicy::sequential());
    }
}
