//! Set operations and grouping aggregates.
//!
//! The paper's future-work section calls the "inclusion of other
//! relational operations" a demanding field; these operators round out the
//! local engine (set semantics and GROUP BY aggregates) so downstream work
//! on encrypted aggregation (the Hacıgümüş/Mykletun line the related-work
//! section surveys) has a plaintext reference semantics to verify against.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::value::{Type, Value};
use crate::RelError;

/// An aggregate function over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count (column-independent, but bound to one for uniformity).
    Count,
    /// Sum of an `Int` column (wrapping is an error).
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl AggFn {
    fn name(&self) -> &'static str {
        match self {
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Min => "min",
            AggFn::Max => "max",
        }
    }

    fn output_type(&self, input: Type) -> Type {
        match self {
            AggFn::Count | AggFn::Sum => Type::Int,
            AggFn::Min | AggFn::Max => input,
        }
    }

    fn apply(&self, values: &[&Value]) -> Result<Value, RelError> {
        match self {
            AggFn::Count => Ok(Value::Int(values.len() as i64)),
            AggFn::Sum => {
                let mut acc = 0i64;
                for v in values {
                    let i = v.as_int().ok_or_else(|| {
                        RelError::SchemaMismatch("sum requires an Int column".to_string())
                    })?;
                    acc = acc.checked_add(i).ok_or_else(|| {
                        RelError::SchemaMismatch("sum overflowed i64".to_string())
                    })?;
                }
                Ok(Value::Int(acc))
            }
            AggFn::Min => values
                .iter()
                .min()
                .map(|v| (*v).clone())
                .ok_or_else(|| RelError::SchemaMismatch("min of empty group".to_string())),
            AggFn::Max => values
                .iter()
                .max()
                .map(|v| (*v).clone())
                .ok_or_else(|| RelError::SchemaMismatch("max of empty group".to_string())),
        }
    }
}

impl Relation {
    /// ∩ — set intersection (distinct tuples present in both); schemas
    /// must be identical.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, RelError> {
        if self.schema() != other.schema() {
            return Err(RelError::Incompatible(
                "intersection requires identical schemas".to_string(),
            ));
        }
        let theirs: BTreeSet<&Tuple> = other.tuples().iter().collect();
        let mut seen = BTreeSet::new();
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if theirs.contains(t) && seen.insert(t.clone()) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// − — set difference (distinct tuples of `self` not in `other`).
    pub fn difference(&self, other: &Relation) -> Result<Relation, RelError> {
        if self.schema() != other.schema() {
            return Err(RelError::Incompatible(
                "difference requires identical schemas".to_string(),
            ));
        }
        let theirs: BTreeSet<&Tuple> = other.tuples().iter().collect();
        let mut seen = BTreeSet::new();
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if !theirs.contains(t) && seen.insert(t.clone()) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// γ — GROUP BY `group_cols` with aggregates `(fn, column)`.
    ///
    /// Output schema: the group columns followed by one
    /// `"{fn}_{column}"` column per aggregate.
    ///
    /// ```
    /// use relalg::{AggFn, Relation, Schema, Type, Value};
    ///
    /// let sales = Relation::build(
    ///     Schema::new(&[("region", Type::Str), ("amount", Type::Int)]),
    ///     vec![
    ///         vec![Value::from("north"), Value::Int(10)],
    ///         vec![Value::from("north"), Value::Int(30)],
    ///     ],
    /// ).unwrap();
    /// let by_region = sales.aggregate(&["region"], &[(AggFn::Sum, "amount")]).unwrap();
    /// assert_eq!(by_region.tuples()[0].at(1), &Value::Int(40));
    /// ```
    pub fn aggregate(
        &self,
        group_cols: &[&str],
        aggs: &[(AggFn, &str)],
    ) -> Result<Relation, RelError> {
        let group_idx: Vec<usize> = group_cols
            .iter()
            .map(|c| self.schema().index_of(c))
            .collect::<Result<_, _>>()?;
        let agg_idx: Vec<usize> = aggs
            .iter()
            .map(|(_, c)| self.schema().index_of(c))
            .collect::<Result<_, _>>()?;

        // Output schema.
        let mut attrs: Vec<Attribute> = group_idx
            .iter()
            .map(|&i| self.schema().attributes()[i].clone())
            .collect();
        for ((f, c), &i) in aggs.iter().zip(&agg_idx) {
            attrs.push(Attribute::new(
                format!("{}_{}", f.name(), c),
                f.output_type(self.schema().attributes()[i].ty),
            ));
        }
        let schema = Schema::from_attributes(attrs);

        // Group rows.
        let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
        for t in self.tuples() {
            let key: Vec<Value> = group_idx.iter().map(|&i| t.at(i).clone()).collect();
            groups.entry(key).or_default().push(t);
        }

        let mut out = Relation::empty(schema);
        for (key, rows) in groups {
            let mut values = key;
            for ((f, _), &i) in aggs.iter().zip(&agg_idx) {
                let column: Vec<&Value> = rows.iter().map(|t| t.at(i)).collect();
                values.push(f.apply(&column)?);
            }
            out.insert(Tuple::new(values))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Relation {
        Relation::build(
            Schema::new(&[("region", Type::Str), ("amount", Type::Int)]),
            vec![
                vec![Value::from("north"), Value::Int(10)],
                vec![Value::from("north"), Value::Int(30)],
                vec![Value::from("south"), Value::Int(5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn group_by_with_count_and_sum() {
        let g = sales()
            .aggregate(
                &["region"],
                &[(AggFn::Count, "amount"), (AggFn::Sum, "amount")],
            )
            .unwrap();
        assert_eq!(
            g.schema().attr_names(),
            vec!["region", "count_amount", "sum_amount"]
        );
        assert_eq!(g.len(), 2);
        let north = g
            .tuples()
            .iter()
            .find(|t| t.at(0) == &Value::from("north"))
            .unwrap();
        assert_eq!(north.at(1), &Value::Int(2));
        assert_eq!(north.at(2), &Value::Int(40));
    }

    #[test]
    fn min_max_track_extremes() {
        let g = sales()
            .aggregate(
                &["region"],
                &[(AggFn::Min, "amount"), (AggFn::Max, "amount")],
            )
            .unwrap();
        let north = g
            .tuples()
            .iter()
            .find(|t| t.at(0) == &Value::from("north"))
            .unwrap();
        assert_eq!(north.at(1), &Value::Int(10));
        assert_eq!(north.at(2), &Value::Int(30));
    }

    #[test]
    fn global_aggregate_without_groups() {
        let g = sales().aggregate(&[], &[(AggFn::Sum, "amount")]).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.tuples()[0].at(0), &Value::Int(45));
    }

    #[test]
    fn sum_rejects_string_columns() {
        assert!(sales().aggregate(&[], &[(AggFn::Sum, "region")]).is_err());
    }

    #[test]
    fn sum_overflow_is_an_error() {
        let r = Relation::build(
            Schema::new(&[("v", Type::Int)]),
            vec![vec![Value::Int(i64::MAX)], vec![Value::Int(1)]],
        )
        .unwrap();
        assert!(r.aggregate(&[], &[(AggFn::Sum, "v")]).is_err());
    }

    #[test]
    fn intersect_and_difference() {
        let a = Relation::build(
            Schema::new(&[("v", Type::Int)]),
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        let b = Relation::build(
            Schema::new(&[("v", Type::Int)]),
            vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        )
        .unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.len(), 1);
        assert_eq!(i.tuples()[0].at(0), &Value::Int(2));
        let d = a.difference(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.tuples()[0].at(0), &Value::Int(1));
    }

    #[test]
    fn set_ops_reject_mismatched_schemas() {
        let a = Relation::empty(Schema::new(&[("v", Type::Int)]));
        let b = Relation::empty(Schema::new(&[("w", Type::Int)]));
        assert!(a.intersect(&b).is_err());
        assert!(a.difference(&b).is_err());
    }

    #[test]
    fn aggregate_unknown_column_errors() {
        assert!(sales().aggregate(&["ghost"], &[]).is_err());
        assert!(sales().aggregate(&[], &[(AggFn::Count, "ghost")]).is_err());
    }
}
