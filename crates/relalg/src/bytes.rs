//! Minimal in-tree byte-buffer primitives.
//!
//! A [`ByteWriter`] appends big-endian integers and raw slices to a growable
//! buffer; a [`ByteReader`] consumes them front-to-back from a borrowed
//! slice.  Multi-byte integers are always big-endian, matching network
//! order and keeping every encoding canonical (the protocols hash and
//! encrypt these byte strings, so two encoders must agree bit-for-bit).
//!
//! The `get_*` methods panic if the buffer holds fewer bytes than the value
//! needs; decoders are expected to check [`ByteReader::remaining`] first and
//! surface a typed error, as [`crate::codec`] does.

/// Growable write buffer with big-endian integer appends.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Copies the accumulated bytes out without consuming the writer.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

/// Front-to-back reader over a borrowed byte slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    rest: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { rest: data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// True if any bytes remain.
    pub fn has_remaining(&self) -> bool {
        !self.rest.is_empty()
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        head
    }

    /// Reads one byte.  Panics if empty.
    pub fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a big-endian `u16`.  Panics on underflow.
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    /// Reads a big-endian `u32`.  Panics on underflow.
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    /// Reads a big-endian `u64`.  Panics on underflow.
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    /// Reads a big-endian `i64`.  Panics on underflow.
    pub fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    /// Reads the next `len` bytes as a borrowed slice.  Panics on underflow.
    pub fn get_slice(&mut self, len: usize) -> &'a [u8] {
        self.take(len)
    }

    /// Reads the next `len` bytes into an owned vector.  Panics on underflow.
    pub fn copy_to_vec(&mut self, len: usize) -> Vec<u8> {
        self.take(len).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_big_endian() {
        let mut w = ByteWriter::new();
        w.put_u8(0xab);
        w.put_u16(0x0102);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_i64(-42);
        let bytes = w.into_vec();
        // Spot-check wire order: u16 0x0102 serializes high byte first.
        assert_eq!(&bytes[1..3], &[0x01, 0x02]);

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get_i64(), -42);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_roundtrip() {
        let mut w = ByteWriter::with_capacity(16);
        w.put_slice(b"hello");
        w.put_slice(b" world");
        assert_eq!(w.len(), 11);
        let bytes = w.to_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_slice(5), b"hello");
        assert_eq!(r.copy_to_vec(6), b" world");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_writer_is_empty() {
        let w = ByteWriter::new();
        assert!(w.is_empty());
        assert!(!ByteReader::new(&w.to_vec()).has_remaining());
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r = ByteReader::new(&[1, 2]);
        let _ = r.get_u32();
    }
}
