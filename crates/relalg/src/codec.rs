//! Binary tuple codec.
//!
//! The protocols encrypt *byte strings*; this module defines the canonical
//! serialization of tuples and tuple sets (`Tup_i(a)` in the paper).  The
//! format is self-describing and length-prefixed:
//!
//! ```text
//! tuple      := u16 arity, value*
//! value      := tag u8 (0=Int, 1=Str, 2=Bool), payload
//! Int        := i64 big-endian
//! Str        := u32 length, utf-8 bytes
//! Bool       := u8 (0|1)
//! tuple set  := u32 count, tuple*
//! ```

use crate::bytes::{ByteReader, ByteWriter};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::RelError;

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_BOOL: u8 = 2;

/// Serializes one tuple.
pub fn encode_tuple(tuple: &Tuple) -> Vec<u8> {
    let mut buf = ByteWriter::new();
    put_tuple(&mut buf, tuple);
    buf.into_vec()
}

/// Deserializes one tuple, requiring the buffer to be fully consumed.
pub fn decode_tuple(data: &[u8]) -> Result<Tuple, RelError> {
    let mut buf = ByteReader::new(data);
    let t = get_tuple(&mut buf)?;
    if buf.has_remaining() {
        return Err(RelError::Codec("trailing bytes after tuple".to_string()));
    }
    Ok(t)
}

/// Serializes a tuple set (the payload unit of all three protocols).
pub fn encode_tuple_set(tuples: &[Tuple]) -> Vec<u8> {
    let mut buf = ByteWriter::new();
    buf.put_u32(tuples.len() as u32);
    for t in tuples {
        put_tuple(&mut buf, t);
    }
    buf.into_vec()
}

/// Deserializes a tuple set.
pub fn decode_tuple_set(data: &[u8]) -> Result<Vec<Tuple>, RelError> {
    let mut buf = ByteReader::new(data);
    if buf.remaining() < 4 {
        return Err(RelError::Codec("truncated tuple-set header".to_string()));
    }
    let count = buf.get_u32() as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(get_tuple(&mut buf)?);
    }
    if buf.has_remaining() {
        return Err(RelError::Codec(
            "trailing bytes after tuple set".to_string(),
        ));
    }
    Ok(out)
}

fn put_tuple(buf: &mut ByteWriter, tuple: &Tuple) {
    buf.put_u16(tuple.arity() as u16);
    for v in tuple.values() {
        match v {
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64(*i);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(*b as u8);
            }
        }
    }
}

fn get_tuple(buf: &mut ByteReader) -> Result<Tuple, RelError> {
    if buf.remaining() < 2 {
        return Err(RelError::Codec("truncated tuple header".to_string()));
    }
    let arity = buf.get_u16() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(buf)?);
    }
    Ok(Tuple::new(values))
}

fn get_value(buf: &mut ByteReader) -> Result<Value, RelError> {
    if !buf.has_remaining() {
        return Err(RelError::Codec("truncated value tag".to_string()));
    }
    match buf.get_u8() {
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(RelError::Codec("truncated int".to_string()));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(RelError::Codec("truncated string length".to_string()));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(RelError::Codec("truncated string body".to_string()));
            }
            let bytes = buf.copy_to_vec(len);
            let s = String::from_utf8(bytes)
                .map_err(|_| RelError::Codec("invalid UTF-8 in string".to_string()))?;
            Ok(Value::Str(s))
        }
        TAG_BOOL => {
            if !buf.has_remaining() {
                return Err(RelError::Codec("truncated bool".to_string()));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        tag => Err(RelError::Codec(format!("unknown value tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple() -> Tuple {
        Tuple::new(vec![
            Value::Int(-42),
            Value::from("héllo"),
            Value::from(true),
        ])
    }

    #[test]
    fn tuple_roundtrip() {
        let t = tuple();
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn tuple_set_roundtrip() {
        let set = vec![tuple(), Tuple::new(vec![Value::Int(7)]), Tuple::new(vec![])];
        assert_eq!(decode_tuple_set(&encode_tuple_set(&set)).unwrap(), set);
        assert_eq!(decode_tuple_set(&encode_tuple_set(&[])).unwrap(), vec![]);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_tuple(&tuple());
        for cut in [0, 1, 2, 5, bytes.len() - 1] {
            assert!(decode_tuple(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_tuple(&tuple());
        bytes.push(0);
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        // arity 1, tag 9
        let bytes = [0u8, 1, 9];
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        // arity 1, tag STR, len 2, invalid bytes
        let bytes = [0u8, 1, 1, 0, 0, 0, 2, 0xff, 0xfe];
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn encoding_is_canonical() {
        assert_eq!(encode_tuple(&tuple()), encode_tuple(&tuple()));
        assert_ne!(
            encode_tuple(&Tuple::new(vec![Value::Int(1)])),
            encode_tuple(&Tuple::new(vec![Value::Int(2)]))
        );
    }
}
