#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A minimal relational-algebra engine.
//!
//! This is the data-model substrate of the secure-mediation system: typed
//! relations, the algebra operators the mediator needs (selection,
//! projection, cross product, natural/equi join, union), a binary tuple
//! codec (the byte strings that get encrypted), and a SQL-subset parser
//! with the paper's "SQL2Algebra" translation and the mediator's query
//! decomposition into partial queries plus a JOIN node.
//!
//! # Example
//!
//! ```
//! use relalg::{Relation, Schema, Type, Value};
//!
//! let patients = Relation::build(
//!     Schema::new(&[("ssn", Type::Int), ("name", Type::Str)]),
//!     vec![
//!         vec![Value::Int(1), Value::from("ada")],
//!         vec![Value::Int(2), Value::from("grace")],
//!     ],
//! ).unwrap();
//! let claims = Relation::build(
//!     Schema::new(&[("ssn", Type::Int), ("amount", Type::Int)]),
//!     vec![
//!         vec![Value::Int(2), Value::Int(1200)],
//!     ],
//! ).unwrap();
//! let joined = patients.natural_join(&claims).unwrap();
//! assert_eq!(joined.len(), 1);
//! assert_eq!(joined.schema().attr_names(), vec!["ssn", "name", "amount"]);
//! ```

mod aggregate;
pub mod bytes;
mod codec;
mod predicate;
mod relation;
mod schema;
mod tuple;
mod value;

pub mod sql;

pub use aggregate::AggFn;
pub use codec::{decode_tuple, decode_tuple_set, encode_tuple, encode_tuple_set};
pub use predicate::{Operand, Predicate};
pub use relation::Relation;
pub use schema::{Attribute, Schema};
pub use tuple::Tuple;
pub use value::{Type, Value};

/// Errors from schema mismatches, unknown attributes, codec failures, and
/// SQL parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// An attribute name did not resolve against a schema.
    UnknownAttribute(String),
    /// A tuple's arity or value types did not match the schema.
    SchemaMismatch(String),
    /// Two relations were combined in an incompatible way.
    Incompatible(String),
    /// A byte string could not be decoded as a tuple.
    Codec(String),
    /// A SQL string could not be parsed.
    Sql(String),
    /// A bare column reference matched attributes of several tables in
    /// scope (and is not a join attribute, which would merge them).
    AmbiguousColumn(String),
    /// A table alias (or table name) appeared twice in one FROM clause.
    DuplicateAlias(String),
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::UnknownAttribute(a) => write!(f, "unknown attribute: {a}"),
            RelError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            RelError::Incompatible(m) => write!(f, "incompatible relations: {m}"),
            RelError::Codec(m) => write!(f, "codec error: {m}"),
            RelError::Sql(m) => write!(f, "SQL parse error: {m}"),
            RelError::AmbiguousColumn(m) => write!(f, "ambiguous column: {m}"),
            RelError::DuplicateAlias(m) => write!(f, "duplicate table alias: {m}"),
        }
    }
}

impl std::error::Error for RelError {}
