//! Selection predicates.
//!
//! Rich enough for the paper's needs: equality/comparison between columns
//! and literals, conjunction, disjunction, negation.  The DAS server query
//! `Cond_S` (a DNF over index-value equalities) and the client query
//! `Cond_C` are both built from these nodes.

use std::fmt;

use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::RelError;

/// A comparison operand: a column reference or a literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Named column, resolved against the schema at evaluation time.
    Col(String),
    /// Literal value.
    Lit(Value),
}

impl Operand {
    /// Column operand.
    pub fn col(name: impl Into<String>) -> Self {
        Operand::Col(name.into())
    }

    /// Literal operand.
    pub fn lit(v: impl Into<Value>) -> Self {
        Operand::Lit(v.into())
    }

    fn resolve<'a>(&'a self, schema: &Schema, tuple: &'a Tuple) -> Result<&'a Value, RelError> {
        match self {
            Operand::Col(name) => tuple.get(schema, name),
            Operand::Lit(v) => Ok(v),
        }
    }
}

/// A boolean predicate over tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (the neutral element of `and`).
    True,
    /// Always false (the neutral element of `or`).
    False,
    /// `left = right`.
    Eq(Operand, Operand),
    /// `left < right` (values must have the same type).
    Lt(Operand, Operand),
    /// `left <= right`.
    Le(Operand, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = literal`.
    pub fn eq_lit(col: impl Into<String>, v: impl Into<Value>) -> Self {
        Predicate::Eq(Operand::col(col), Operand::lit(v))
    }

    /// `column_a = column_b`.
    pub fn eq_cols(a: impl Into<String>, b: impl Into<String>) -> Self {
        Predicate::Eq(Operand::col(a), Operand::col(b))
    }

    /// `self AND other`, simplifying around the constants.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// `self OR other`, simplifying around the constants.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::False, p) | (p, Predicate::False) => p,
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Builds the disjunction of a list of predicates (`False` if empty).
    pub fn any(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::False, Predicate::or)
    }

    /// Builds the conjunction of a list of predicates (`True` if empty).
    pub fn all(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::True, Predicate::and)
    }

    /// Evaluates against a tuple under a schema.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool, RelError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::Eq(l, r) => Ok(l.resolve(schema, tuple)? == r.resolve(schema, tuple)?),
            Predicate::Lt(l, r) => {
                let (lv, rv) = (l.resolve(schema, tuple)?, r.resolve(schema, tuple)?);
                check_same_type(lv, rv)?;
                Ok(lv < rv)
            }
            Predicate::Le(l, r) => {
                let (lv, rv) = (l.resolve(schema, tuple)?, r.resolve(schema, tuple)?);
                check_same_type(lv, rv)?;
                Ok(lv <= rv)
            }
            Predicate::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Predicate::Not(p) => Ok(!p.eval(schema, tuple)?),
        }
    }

    /// Number of atomic comparisons — used to report the size of the DAS
    /// server condition `Cond_S`.
    pub fn atom_count(&self) -> usize {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Eq(..) | Predicate::Lt(..) | Predicate::Le(..) => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.atom_count() + b.atom_count(),
            Predicate::Not(p) => p.atom_count(),
        }
    }
}

fn check_same_type(a: &Value, b: &Value) -> Result<(), RelError> {
    if a.ty() != b.ty() {
        return Err(RelError::SchemaMismatch(format!(
            "cannot compare {} with {}",
            a.ty(),
            b.ty()
        )));
    }
    Ok(())
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Eq(l, r) => write!(f, "{l} = {r}"),
            Predicate::Lt(l, r) => write!(f, "{l} < {r}"),
            Predicate::Le(l, r) => write!(f, "{l} <= {r}"),
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(p) => write!(f, "¬{p}"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Type;

    fn setup() -> (Schema, Tuple) {
        (
            Schema::new(&[("id", Type::Int), ("name", Type::Str)]),
            Tuple::new(vec![Value::Int(7), Value::from("ada")]),
        )
    }

    #[test]
    fn equality() {
        let (s, t) = setup();
        assert!(Predicate::eq_lit("id", 7i64).eval(&s, &t).unwrap());
        assert!(!Predicate::eq_lit("id", 8i64).eval(&s, &t).unwrap());
        assert!(Predicate::eq_lit("name", "ada").eval(&s, &t).unwrap());
    }

    #[test]
    fn comparisons_and_type_errors() {
        let (s, t) = setup();
        let lt = Predicate::Lt(Operand::col("id"), Operand::lit(10i64));
        assert!(lt.eval(&s, &t).unwrap());
        let bad = Predicate::Lt(Operand::col("id"), Operand::lit("x"));
        assert!(bad.eval(&s, &t).is_err());
    }

    #[test]
    fn connectives() {
        let (s, t) = setup();
        let p = Predicate::eq_lit("id", 7i64).and(Predicate::eq_lit("name", "ada"));
        assert!(p.eval(&s, &t).unwrap());
        let q = Predicate::eq_lit("id", 0i64).or(Predicate::eq_lit("name", "ada"));
        assert!(q.eval(&s, &t).unwrap());
        let n = Predicate::Not(Box::new(Predicate::eq_lit("id", 7i64)));
        assert!(!n.eval(&s, &t).unwrap());
    }

    #[test]
    fn constant_simplification() {
        let p = Predicate::True.and(Predicate::eq_lit("id", 1i64));
        assert_eq!(p, Predicate::eq_lit("id", 1i64));
        assert_eq!(
            Predicate::False.and(Predicate::eq_lit("id", 1i64)),
            Predicate::False
        );
        assert_eq!(Predicate::any(vec![]), Predicate::False);
        assert_eq!(Predicate::all(vec![]), Predicate::True);
    }

    #[test]
    fn atom_count_counts_dnf_terms() {
        let dnf = Predicate::any(
            (0..5).map(|i| Predicate::eq_lit("a", i as i64).and(Predicate::eq_lit("b", i as i64))),
        );
        assert_eq!(dnf.atom_count(), 10);
    }

    #[test]
    fn unknown_column_is_error() {
        let (s, t) = setup();
        assert!(Predicate::eq_lit("ghost", 1i64).eval(&s, &t).is_err());
    }
}
