//! Relations and the algebra operators.

use std::collections::BTreeSet;
use std::fmt;

use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::RelError;

/// A relation: a schema plus a bag of tuples (duplicates allowed, as in SQL;
/// [`Relation::distinct`] gives set semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Builds a relation, validating every row against the schema.
    pub fn build(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self, RelError> {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(Tuple::new(row))?;
        }
        Ok(rel)
    }

    /// Inserts a tuple after schema validation.
    pub fn insert(&mut self, tuple: Tuple) -> Result<(), RelError> {
        tuple.conforms_to(&self.schema)?;
        self.tuples.push(tuple);
        Ok(())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples (the `|R_i|` of the paper's leakage table).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// σ — keeps tuples satisfying `pred`.
    pub fn select(&self, pred: &Predicate) -> Result<Relation, RelError> {
        let mut out = Relation::empty(self.schema.clone());
        for t in &self.tuples {
            if pred.eval(&self.schema, t)? {
                out.tuples.push(t.clone());
            }
        }
        Ok(out)
    }

    /// π — keeps the named columns, in the given order.
    pub fn project(&self, cols: &[&str]) -> Result<Relation, RelError> {
        let indices: Vec<usize> = cols
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<Result<_, _>>()?;
        let attrs = indices
            .iter()
            .map(|&i| self.schema.attributes()[i].clone())
            .collect();
        let schema = Schema::from_attributes(attrs);
        let tuples = self.tuples.iter().map(|t| t.project(&indices)).collect();
        Ok(Relation { schema, tuples })
    }

    /// × — cross product; attribute names must not collide (qualify first).
    pub fn cross(&self, other: &Relation) -> Result<Relation, RelError> {
        let mut attrs = self.schema.attributes().to_vec();
        attrs.extend(other.schema.attributes().iter().cloned());
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[i + 1..] {
                if a.name == b.name {
                    return Err(RelError::Incompatible(format!(
                        "cross product would duplicate attribute {}",
                        a.name
                    )));
                }
            }
        }
        let schema = Schema::from_attributes(attrs);
        let mut tuples = Vec::with_capacity(self.len() * other.len());
        for l in &self.tuples {
            for r in &other.tuples {
                tuples.push(l.concat_skipping(r, &[]));
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// ⨝ — natural join on all common (base-name) attributes.
    ///
    /// The paper's global queries are exactly of this shape: one JOIN of two
    /// relations on their shared attribute `A_join`.
    pub fn natural_join(&self, other: &Relation) -> Result<Relation, RelError> {
        let common = self.schema.common_attributes(&other.schema);
        if common.is_empty() {
            return Err(RelError::Incompatible(
                "natural join requires at least one common attribute".to_string(),
            ));
        }
        self.join_on(other, &common)
    }

    /// Equi-join on explicit (base-name) attributes.
    pub fn join_on(&self, other: &Relation, attrs: &[String]) -> Result<Relation, RelError> {
        let left_idx: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.index_of(a))
            .collect::<Result<_, _>>()?;
        let right_idx: Vec<usize> = attrs
            .iter()
            .map(|a| other.schema.index_of(a))
            .collect::<Result<_, _>>()?;
        let schema = self.schema.join_schema(&other.schema, attrs);
        let mut out = Relation::empty(schema);
        for l in &self.tuples {
            for r in &other.tuples {
                let matches = left_idx
                    .iter()
                    .zip(&right_idx)
                    .all(|(&li, &ri)| l.at(li) == r.at(ri));
                if matches {
                    out.tuples.push(l.concat_skipping(r, &right_idx));
                }
            }
        }
        Ok(out)
    }

    /// ∪ — bag union; schemas must be identical.
    pub fn union(&self, other: &Relation) -> Result<Relation, RelError> {
        if self.schema != other.schema {
            return Err(RelError::Incompatible(
                "union requires identical schemas".to_string(),
            ));
        }
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Ok(Relation {
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Removes duplicate tuples (set semantics).
    pub fn distinct(&self) -> Relation {
        let mut seen = BTreeSet::new();
        let tuples = self
            .tuples
            .iter()
            .filter(|t| seen.insert((*t).clone()))
            .cloned()
            .collect();
        Relation {
            schema: self.schema.clone(),
            tuples,
        }
    }

    /// The active domain of an attribute: the set of values actually
    /// occurring — the paper's `domactive(A)`.
    pub fn active_domain(&self, attr: &str) -> Result<BTreeSet<Value>, RelError> {
        let idx = self.schema.index_of(attr)?;
        Ok(self.tuples.iter().map(|t| t.at(idx).clone()).collect())
    }

    /// The paper's `Tup_i(a)`: all tuples whose `attr` equals `value`.
    pub fn tuples_with(&self, attr: &str, value: &Value) -> Result<Vec<Tuple>, RelError> {
        let idx = self.schema.index_of(attr)?;
        Ok(self
            .tuples
            .iter()
            .filter(|t| t.at(idx) == value)
            .cloned()
            .collect())
    }

    /// Renames all attributes with a relation-name prefix.
    pub fn qualified(&self, prefix: &str) -> Relation {
        Relation {
            schema: self.schema.qualified(prefix),
            tuples: self.tuples.clone(),
        }
    }

    /// Sorts tuples (canonical order, for comparisons in tests).
    pub fn sorted(&self) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort();
        Relation {
            schema: self.schema.clone(),
            tuples,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Type;

    fn patients() -> Relation {
        Relation::build(
            Schema::new(&[("ssn", Type::Int), ("name", Type::Str)]),
            vec![
                vec![Value::Int(1), Value::from("ada")],
                vec![Value::Int(2), Value::from("grace")],
                vec![Value::Int(3), Value::from("edsger")],
            ],
        )
        .unwrap()
    }

    fn claims() -> Relation {
        Relation::build(
            Schema::new(&[("ssn", Type::Int), ("amount", Type::Int)]),
            vec![
                vec![Value::Int(2), Value::Int(100)],
                vec![Value::Int(2), Value::Int(250)],
                vec![Value::Int(4), Value::Int(10)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_validates_rows() {
        let bad = Relation::build(
            Schema::new(&[("x", Type::Int)]),
            vec![vec![Value::from("oops")]],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn select_filters() {
        let r = patients()
            .select(&Predicate::eq_lit("name", "grace"))
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].at(0), &Value::Int(2));
    }

    #[test]
    fn project_reorders_and_drops() {
        let r = patients().project(&["name"]).unwrap();
        assert_eq!(r.schema().attr_names(), vec!["name"]);
        assert_eq!(r.len(), 3);
        assert!(patients().project(&["ghost"]).is_err());
    }

    #[test]
    fn natural_join_matches_and_drops_duplicate_column() {
        let j = patients().natural_join(&claims()).unwrap();
        assert_eq!(j.schema().attr_names(), vec!["ssn", "name", "amount"]);
        assert_eq!(j.len(), 2); // grace has two claims
        for t in j.tuples() {
            assert_eq!(t.at(0), &Value::Int(2));
            assert_eq!(t.at(1), &Value::from("grace"));
        }
    }

    #[test]
    fn join_without_common_attrs_is_error() {
        let a = Relation::empty(Schema::new(&[("x", Type::Int)]));
        let b = Relation::empty(Schema::new(&[("y", Type::Int)]));
        assert!(a.natural_join(&b).is_err());
    }

    #[test]
    fn cross_product_sizes() {
        let a = patients().qualified("p");
        let b = claims().qualified("c");
        let x = a.cross(&b).unwrap();
        assert_eq!(x.len(), 9);
        assert_eq!(x.schema().arity(), 4);
    }

    #[test]
    fn cross_rejects_name_collisions() {
        assert!(patients().cross(&claims()).is_err());
    }

    #[test]
    fn union_and_distinct() {
        let u = patients().union(&patients()).unwrap();
        assert_eq!(u.len(), 6);
        assert_eq!(u.distinct().len(), 3);
        assert!(patients().union(&claims()).is_err());
    }

    #[test]
    fn active_domain() {
        let dom = claims().active_domain("ssn").unwrap();
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&Value::Int(2)) && dom.contains(&Value::Int(4)));
    }

    #[test]
    fn tuples_with_groups_by_join_value() {
        let tup2 = claims().tuples_with("ssn", &Value::Int(2)).unwrap();
        assert_eq!(tup2.len(), 2);
        let tup9 = claims().tuples_with("ssn", &Value::Int(9)).unwrap();
        assert!(tup9.is_empty());
    }

    #[test]
    fn qualified_join_via_explicit_attrs() {
        let a = patients().qualified("p");
        let b = claims().qualified("c");
        // After qualification there are no common base names conflicts; join
        // explicitly on ssn.
        let j = a.join_on(&b, &["ssn".to_string()]).unwrap();
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn empty_relation_behaviour() {
        let e = Relation::empty(patients().schema().clone());
        assert!(e.is_empty());
        assert_eq!(e.natural_join(&claims()).unwrap().len(), 0);
        assert_eq!(e.active_domain("ssn").unwrap().len(), 0);
    }
}
