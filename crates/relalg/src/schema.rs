//! Relation schemas.

use std::fmt;

use crate::value::Type;
use crate::RelError;

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name; may be qualified (`"R1.ssn"`) or bare (`"ssn"`).
    pub name: String,
    /// Attribute type.
    pub ty: Type,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// The unqualified part of the name (after the last `.`).
    pub fn base_name(&self) -> &str {
        self.name
            .rsplit('.')
            .next()
            .expect("rsplit yields at least one piece")
    }
}

/// An ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name.
    pub fn new(attrs: &[(&str, Type)]) -> Self {
        Self::from_attributes(attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
    }

    /// Builds a schema from owned attributes.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name.
    pub fn from_attributes(attrs: Vec<Attribute>) -> Self {
        for (i, a) in attrs.iter().enumerate() {
            for b in &attrs[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate attribute name {:?}", a.name);
            }
        }
        Schema { attrs }
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in order.
    pub fn attr_names(&self) -> Vec<&str> {
        self.attrs.iter().map(|a| a.name.as_str()).collect()
    }

    /// Resolves a (possibly unqualified) name to its column index.
    ///
    /// A bare name matches a qualified attribute when exactly one attribute
    /// has that base name.
    pub fn index_of(&self, name: &str) -> Result<usize, RelError> {
        if let Some(i) = self.attrs.iter().position(|a| a.name == name) {
            return Ok(i);
        }
        let base_matches: Vec<usize> = self
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.base_name() == name)
            .map(|(i, _)| i)
            .collect();
        match base_matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(RelError::UnknownAttribute(name.to_string())),
            _ => Err(RelError::UnknownAttribute(format!("{name} is ambiguous"))),
        }
    }

    /// The attribute at a resolved name.
    pub fn attribute(&self, name: &str) -> Result<&Attribute, RelError> {
        Ok(&self.attrs[self.index_of(name)?])
    }

    /// Names common to both schemas (by base name) — the natural-join
    /// attributes.
    pub fn common_attributes(&self, other: &Schema) -> Vec<String> {
        self.attrs
            .iter()
            .filter(|a| other.attrs.iter().any(|b| b.base_name() == a.base_name()))
            .map(|a| a.base_name().to_string())
            .collect()
    }

    /// Schema of `self ⨝ other`: all of `self`, then `other` minus the
    /// join attributes.
    pub fn join_schema(&self, other: &Schema, join_attrs: &[String]) -> Schema {
        let mut attrs = self.attrs.clone();
        for b in &other.attrs {
            if !join_attrs.iter().any(|j| j == b.base_name()) {
                attrs.push(b.clone());
            }
        }
        Schema::from_attributes(attrs)
    }

    /// Renames every attribute to `prefix.base_name` (schema embedding into
    /// the mediator's global schema).
    pub fn qualified(&self, prefix: &str) -> Schema {
        Schema {
            attrs: self
                .attrs
                .iter()
                .map(|a| Attribute::new(format!("{prefix}.{}", a.base_name()), a.ty))
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[
            ("ssn", Type::Int),
            ("name", Type::Str),
            ("insured", Type::Bool),
        ])
    }

    #[test]
    fn index_resolution() {
        let s = schema();
        assert_eq!(s.index_of("ssn").unwrap(), 0);
        assert_eq!(s.index_of("insured").unwrap(), 2);
        assert!(matches!(
            s.index_of("nope"),
            Err(RelError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn qualified_resolution() {
        let s = schema().qualified("patients");
        assert_eq!(s.index_of("patients.ssn").unwrap(), 0);
        // Bare base name resolves when unambiguous.
        assert_eq!(s.index_of("name").unwrap(), 1);
    }

    #[test]
    fn ambiguous_base_name_rejected() {
        let s = Schema::new(&[("a.x", Type::Int), ("b.x", Type::Int)]);
        assert!(matches!(
            s.index_of("x"),
            Err(RelError::UnknownAttribute(_))
        ));
        assert_eq!(s.index_of("a.x").unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_panic() {
        Schema::new(&[("x", Type::Int), ("x", Type::Str)]);
    }

    #[test]
    fn common_attributes_for_natural_join() {
        let a = Schema::new(&[("ssn", Type::Int), ("name", Type::Str)]);
        let b = Schema::new(&[("ssn", Type::Int), ("amount", Type::Int)]);
        assert_eq!(a.common_attributes(&b), vec!["ssn"]);
    }

    #[test]
    fn join_schema_drops_duplicate_join_attr() {
        let a = Schema::new(&[("ssn", Type::Int), ("name", Type::Str)]);
        let b = Schema::new(&[("ssn", Type::Int), ("amount", Type::Int)]);
        let j = a.join_schema(&b, &["ssn".to_string()]);
        assert_eq!(j.attr_names(), vec!["ssn", "name", "amount"]);
    }

    #[test]
    fn display() {
        assert_eq!(schema().to_string(), "(ssn: int, name: str, insured: bool)");
    }
}
