//! A SQL subset and the "SQL2Algebra" translation.
//!
//! The paper (Section 2) has the mediator transform SQL queries "into a
//! so-called 'algebra tree' (with relational operators in the inner nodes
//! of the tree and partial queries at the leaves) by using the
//! 'SQL2Algebra' library".  This module is that library:
//!
//! * [`parse`] — SQL text → [`Algebra`] tree,
//! * [`Algebra::eval`] — evaluate a tree against a catalog of relations,
//! * [`decompose`] — the mediator's step 2 of Listing 1: split a two-
//!   relation JOIN query into `select *` partial queries plus a
//!   [`JoinSpec`], with any residual selection/projection kept for post-
//!   processing.
//!
//! For multi-way queries there are two further entry points feeding the
//! planner:
//!
//! * [`query_graph`] — schema-aware analysis of a parsed tree: tables,
//!   per-table pushed-down filters, join edges with their attributes, and
//!   the client-side residual, with typed errors for unknown or ambiguous
//!   column references,
//! * [`push_down`] — rewrite a tree so single-table WHERE conjuncts sit
//!   directly above their scans (selection pushdown).
//!
//! Supported grammar:
//!
//! ```text
//! query  := SELECT (* | col[, col]*) FROM table_ref [WHERE cond]
//!           [GROUP BY col[, col]*]
//! table_ref := primary (join_tail)*
//! join_tail := NATURAL JOIN primary
//!            | JOIN primary ON col = col (AND col = col)*
//!            | , primary                -- equi-join via WHERE
//! primary := ident [[AS] ident]        -- optional table alias
//! cond   := atom (AND atom)*
//! atom   := operand (= | < | <=) operand
//! ```
//!
//! Table aliases are resolved away at parse time: every qualified column
//! reference in the returned tree names the underlying relation.  A
//! qualifier that names no FROM entry is [`RelError::UnknownAttribute`];
//! a repeated alias or relation is [`RelError::DuplicateAlias`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::aggregate::AggFn;
use crate::predicate::{Operand, Predicate};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use crate::RelError;

/// A relational algebra tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Algebra {
    /// Leaf: scan a named base relation (a partial query target).
    Scan(String),
    /// σ.
    Select {
        /// Input expression.
        input: Box<Algebra>,
        /// Filter predicate.
        pred: Predicate,
    },
    /// π.
    Project {
        /// Input expression.
        input: Box<Algebra>,
        /// Output column names, in order.
        cols: Vec<String>,
    },
    /// γ — GROUP BY with aggregates.
    Aggregate {
        /// Input expression.
        input: Box<Algebra>,
        /// Grouping columns.
        group_cols: Vec<String>,
        /// Aggregates `(fn, column)`.
        aggs: Vec<(AggFn, String)>,
    },
    /// ⨝ on equal base names.
    Join {
        /// Left input.
        left: Box<Algebra>,
        /// Right input.
        right: Box<Algebra>,
        /// Explicit join attributes (base names).
        on: Vec<String>,
        /// True for `NATURAL JOIN` (join attributes inferred from the
        /// schemas — in the mediator, from the global-schema embedding).
        natural: bool,
    },
}

impl Algebra {
    /// Evaluates the tree against named base relations.
    pub fn eval(&self, catalog: &HashMap<String, Relation>) -> Result<Relation, RelError> {
        match self {
            Algebra::Scan(name) => catalog
                .get(name)
                .cloned()
                .ok_or_else(|| RelError::UnknownAttribute(format!("relation {name}"))),
            Algebra::Select { input, pred } => input.eval(catalog)?.select(pred),
            Algebra::Project { input, cols } => {
                let rel = input.eval(catalog)?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                rel.project(&refs)
            }
            Algebra::Aggregate {
                input,
                group_cols,
                aggs,
            } => {
                let rel = input.eval(catalog)?;
                let groups: Vec<&str> = group_cols.iter().map(String::as_str).collect();
                let agg_refs: Vec<(AggFn, &str)> =
                    aggs.iter().map(|(f, c)| (*f, c.as_str())).collect();
                rel.aggregate(&groups, &agg_refs)
            }
            Algebra::Join {
                left,
                right,
                on,
                natural,
            } => {
                let l = left.eval(catalog)?;
                let r = right.eval(catalog)?;
                if *natural || on.is_empty() {
                    l.natural_join(&r)
                } else {
                    l.join_on(&r, on)
                }
            }
        }
    }

    /// Names of the base relations scanned by this tree.
    pub fn scans(&self) -> Vec<&str> {
        match self {
            Algebra::Scan(name) => vec![name.as_str()],
            Algebra::Select { input, .. }
            | Algebra::Project { input, .. }
            | Algebra::Aggregate { input, .. } => input.scans(),
            Algebra::Join { left, right, .. } => {
                let mut s = left.scans();
                s.extend(right.scans());
                s
            }
        }
    }
}

/// The JOIN the mediator must mediate: two source relations and their join
/// attributes (the paper's `A_join`, generalized to several attributes as
/// suggested in the future-work section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Left relation name (source `S1`).
    pub left: String,
    /// Right relation name (source `S2`).
    pub right: String,
    /// Join attribute base names.
    pub attrs: Vec<String>,
}

/// A GROUP BY clause: grouping columns plus `(function, column)` aggregates.
pub type GroupBy = (Vec<String>, Vec<(AggFn, String)>);

/// Residual work the *client* performs after the mediated join (projection
/// and non-join selection; Listing 1 partial queries are plain `select *`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Residual {
    /// Post-join filter.
    pub pred: Option<Predicate>,
    /// Post-join projection.
    pub cols: Option<Vec<String>>,
    /// Post-join aggregation (GROUP BY columns, aggregates).
    pub aggregate: Option<GroupBy>,
}

/// The mediator's decomposition: partial queries plus join spec plus
/// residual client work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// `select * from <left>` — the partial query `q1`.
    pub q1: String,
    /// `select * from <right>` — the partial query `q2`.
    pub q2: String,
    /// The JOIN to execute over encrypted partial results.
    pub join: JoinSpec,
    /// What remains for the client.
    pub residual: Residual,
}

/// Parses SQL text into an algebra tree.
pub fn parse(sql: &str) -> Result<Algebra, RelError> {
    Parser::new(sql)?.parse_query()
}

/// Decomposes a parsed two-relation join query (Listing 1, step 2).
///
/// Join-attribute equalities in the `WHERE` clause (e.g.
/// `R1.ssn = R2.ssn`) become join attributes; all other conjuncts and any
/// projection become the client's residual work.
pub fn decompose(tree: &Algebra) -> Result<Decomposition, RelError> {
    // Peel aggregation (always client-side work in the mediated setting).
    let (aggregate, tree) = match tree {
        Algebra::Aggregate {
            input,
            group_cols,
            aggs,
        } => (Some((group_cols.clone(), aggs.clone())), input.as_ref()),
        other => (None, other),
    };
    // Peel projection.
    let (cols, inner) = match tree {
        Algebra::Project { input, cols } => (Some(cols.clone()), input.as_ref()),
        other => (None, other),
    };
    // Peel selection.
    let (pred, inner) = match inner {
        Algebra::Select { input, pred } => (Some(pred.clone()), input.as_ref()),
        other => (None, other),
    };
    let Algebra::Join {
        left,
        right,
        on,
        natural,
    } = inner
    else {
        return Err(RelError::Sql(
            "query is not a two-relation join".to_string(),
        ));
    };
    let (Algebra::Scan(l), Algebra::Scan(r)) = (left.as_ref(), right.as_ref()) else {
        return Err(RelError::Sql(
            "join inputs must be base relations".to_string(),
        ));
    };

    // Split WHERE conjuncts into join equalities and residual filters.
    let mut attrs = on.clone();
    let mut residual_pred: Option<Predicate> = None;
    if let Some(p) = pred {
        for conjunct in flatten_and(&p) {
            match join_attr_of(&conjunct, l, r) {
                Some(a) if !attrs.contains(&a) => attrs.push(a),
                Some(_) => {}
                None => {
                    residual_pred = Some(match residual_pred.take() {
                        Some(acc) => acc.and(conjunct),
                        None => conjunct,
                    });
                }
            }
        }
    }
    if attrs.is_empty() && !natural {
        return Err(RelError::Sql(
            "no join attribute: use NATURAL JOIN, JOIN..ON, or a WHERE equality".to_string(),
        ));
    }
    Ok(Decomposition {
        q1: format!("select * from {l}"),
        q2: format!("select * from {r}"),
        join: JoinSpec {
            left: l.clone(),
            right: r.clone(),
            attrs,
        },
        residual: Residual {
            pred: residual_pred,
            cols,
            aggregate,
        },
    })
}

/// Conjuncts of a predicate (flattening nested ANDs).
fn flatten_and(p: &Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = flatten_and(a);
            out.extend(flatten_and(b));
            out
        }
        Predicate::True => vec![],
        other => vec![other.clone()],
    }
}

/// If `p` is `l.x = r.x` (one column from each relation, equal base names),
/// returns the base name.
fn join_attr_of(p: &Predicate, l: &str, r: &str) -> Option<String> {
    let Predicate::Eq(Operand::Col(a), Operand::Col(b)) = p else {
        return None;
    };
    let (qa, na) = split_qualified(a);
    let (qb, nb) = split_qualified(b);
    if na != nb {
        return None;
    }
    match (qa, qb) {
        (Some(x), Some(y)) if (x == l && y == r) || (x == r && y == l) => Some(na.to_string()),
        (None, None) => Some(na.to_string()),
        _ => None,
    }
}

fn split_qualified(name: &str) -> (Option<&str>, &str) {
    match name.rsplit_once('.') {
        Some((q, n)) => (Some(q), n),
        None => (None, name),
    }
}

/// Applies `f` to every column reference in the tree (projection columns,
/// grouping/aggregate columns, predicate operands).  Join attributes are
/// base names and stay untouched.
fn map_columns(
    tree: Algebra,
    f: &dyn Fn(&str) -> Result<String, RelError>,
) -> Result<Algebra, RelError> {
    Ok(match tree {
        Algebra::Scan(n) => Algebra::Scan(n),
        Algebra::Select { input, pred } => Algebra::Select {
            input: Box::new(map_columns(*input, f)?),
            pred: map_pred_columns(&pred, f)?,
        },
        Algebra::Project { input, cols } => Algebra::Project {
            input: Box::new(map_columns(*input, f)?),
            cols: cols.iter().map(|c| f(c)).collect::<Result<Vec<_>, _>>()?,
        },
        Algebra::Aggregate {
            input,
            group_cols,
            aggs,
        } => Algebra::Aggregate {
            input: Box::new(map_columns(*input, f)?),
            group_cols: group_cols
                .iter()
                .map(|c| f(c))
                .collect::<Result<Vec<_>, _>>()?,
            aggs: aggs
                .into_iter()
                .map(|(af, c)| Ok((af, f(&c)?)))
                .collect::<Result<Vec<_>, RelError>>()?,
        },
        Algebra::Join {
            left,
            right,
            on,
            natural,
        } => Algebra::Join {
            left: Box::new(map_columns(*left, f)?),
            right: Box::new(map_columns(*right, f)?),
            on,
            natural,
        },
    })
}

/// Applies `f` to every column operand of a predicate.
fn map_pred_columns(
    p: &Predicate,
    f: &dyn Fn(&str) -> Result<String, RelError>,
) -> Result<Predicate, RelError> {
    let op = |o: &Operand| -> Result<Operand, RelError> {
        Ok(match o {
            Operand::Col(c) => Operand::Col(f(c)?),
            Operand::Lit(v) => Operand::Lit(v.clone()),
        })
    };
    Ok(match p {
        Predicate::True => Predicate::True,
        Predicate::False => Predicate::False,
        Predicate::Eq(l, r) => Predicate::Eq(op(l)?, op(r)?),
        Predicate::Lt(l, r) => Predicate::Lt(op(l)?, op(r)?),
        Predicate::Le(l, r) => Predicate::Le(op(l)?, op(r)?),
        Predicate::And(a, b) => Predicate::And(
            Box::new(map_pred_columns(a, f)?),
            Box::new(map_pred_columns(b, f)?),
        ),
        Predicate::Or(a, b) => Predicate::Or(
            Box::new(map_pred_columns(a, f)?),
            Box::new(map_pred_columns(b, f)?),
        ),
        Predicate::Not(q) => Predicate::Not(Box::new(map_pred_columns(q, f)?)),
    })
}

/// Column operand names of a predicate, in syntactic order.
fn pred_columns(p: &Predicate, out: &mut Vec<String>) {
    match p {
        Predicate::True | Predicate::False => {}
        Predicate::Eq(l, r) | Predicate::Lt(l, r) | Predicate::Le(l, r) => {
            for o in [l, r] {
                if let Operand::Col(c) = o {
                    out.push(c.clone());
                }
            }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            pred_columns(a, out);
            pred_columns(b, out);
        }
        Predicate::Not(q) => pred_columns(q, out),
    }
}

// ---------------------------------------------------------------------------
// Query graph and selection pushdown
// ---------------------------------------------------------------------------

/// An equi-join edge between two base relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// Earlier relation (FROM order).
    pub left: String,
    /// Later relation.
    pub right: String,
    /// Join attribute base names.
    pub attrs: Vec<String>,
}

/// The planner's view of a multi-way query: base tables in FROM order,
/// pushed-down per-table filters, join edges, and the client residual —
/// everything expressed with bare attribute names so it can be evaluated
/// against source relations directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    /// Base relations in FROM order.
    pub tables: Vec<String>,
    /// Per-table pushed-down selections, in FROM order of the table.
    pub scan_preds: Vec<(String, Predicate)>,
    /// Equi-join edges.  Every adjacent join in the tree contributes one;
    /// WHERE equalities merge into the edge covering their table pair.
    pub edges: Vec<JoinEdge>,
    /// What remains for the client after all mediated joins.
    pub residual: Residual,
}

impl QueryGraph {
    /// The pushed-down predicate for `table`, if any.
    pub fn scan_pred(&self, table: &str) -> Option<&Predicate> {
        self.scan_preds
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, p)| p)
    }

    /// The join attributes between two tables, regardless of edge
    /// orientation.
    pub fn edge_attrs(&self, a: &str, b: &str) -> Option<&[String]> {
        self.edges
            .iter()
            .find(|e| (e.left == a && e.right == b) || (e.left == b && e.right == a))
            .map(|e| e.attrs.as_slice())
    }
}

/// Per-join-node resolution recorded while walking the tree, in post-order;
/// drives both edge extraction and the pushdown rebuild.
#[derive(Debug, Clone)]
struct JoinNodeInfo {
    left_set: Vec<String>,
    right_set: Vec<String>,
    on: Vec<String>,
}

/// Analyzes a parsed tree against the base-relation schemas.
///
/// Join attributes for `NATURAL JOIN` (and comma-style joins) are inferred
/// from shared base names, matching [`Algebra::eval`] semantics; WHERE
/// equalities between two tables merge into the join edge covering that
/// pair.  Single-table WHERE conjuncts become `scan_preds`; conjuncts on a
/// join attribute are pushed to *every* table carrying it (sound for
/// equi-joins); everything else lands in the residual.  Column references
/// are validated: unknown names or qualifiers are
/// [`RelError::UnknownAttribute`], and a bare name carried by several
/// tables that is not a join attribute is [`RelError::AmbiguousColumn`].
pub fn query_graph(
    tree: &Algebra,
    schemas: &BTreeMap<String, Schema>,
) -> Result<QueryGraph, RelError> {
    analyze(tree, schemas).map(|(g, _)| g)
}

/// Rewrites a tree so every single-table WHERE conjunct sits directly above
/// its scan, join attributes are explicit on every join node, and residual
/// predicates/columns use bare names.  The result evaluates to the same
/// relation as the input tree.
pub fn push_down(tree: &Algebra, schemas: &BTreeMap<String, Schema>) -> Result<Algebra, RelError> {
    let (graph, nodes) = analyze(tree, schemas)?;
    // Rebuild the join tree in the original shape, wrapping each scan with
    // its pushed-down predicate and making every join's attributes
    // explicit.
    let (_, _, inner) = peel(tree);
    let mut counter = 0usize;
    let mut joined = rebuild(inner, &graph, &nodes, &mut counter)?;
    if let Some(p) = &graph.residual.pred {
        joined = Algebra::Select {
            input: Box::new(joined),
            pred: p.clone(),
        };
    }
    if let Some(cols) = &graph.residual.cols {
        if !cols.is_empty() {
            joined = Algebra::Project {
                input: Box::new(joined),
                cols: cols.clone(),
            };
        }
    }
    if let Some((group_cols, aggs)) = &graph.residual.aggregate {
        joined = Algebra::Aggregate {
            input: Box::new(joined),
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
        };
    }
    Ok(joined)
}

/// Peels `Aggregate(Project(Select(joins)))` layering off the top of a
/// tree, returning the optional layers and the join tree beneath.
#[allow(clippy::type_complexity)]
fn peel(
    tree: &Algebra,
) -> (
    Option<GroupBy>,
    (Option<Vec<String>>, Option<Predicate>),
    &Algebra,
) {
    let (aggregate, tree) = match tree {
        Algebra::Aggregate {
            input,
            group_cols,
            aggs,
        } => (Some((group_cols.clone(), aggs.clone())), input.as_ref()),
        other => (None, other),
    };
    let (cols, tree) = match tree {
        Algebra::Project { input, cols } => (Some(cols.clone()), input.as_ref()),
        other => (None, other),
    };
    let (pred, tree) = match tree {
        Algebra::Select { input, pred } => (Some(pred.clone()), input.as_ref()),
        other => (None, other),
    };
    (aggregate, (cols, pred), tree)
}

fn rebuild(
    node: &Algebra,
    graph: &QueryGraph,
    nodes: &[JoinNodeInfo],
    counter: &mut usize,
) -> Result<Algebra, RelError> {
    match node {
        Algebra::Scan(t) => {
            let scan = Algebra::Scan(t.clone());
            Ok(match graph.scan_pred(t) {
                Some(p) => Algebra::Select {
                    input: Box::new(scan),
                    pred: p.clone(),
                },
                None => scan,
            })
        }
        Algebra::Join { left, right, .. } => {
            let l = rebuild(left, graph, nodes, counter)?;
            let r = rebuild(right, graph, nodes, counter)?;
            let info = &nodes[*counter];
            *counter += 1;
            Ok(Algebra::Join {
                left: Box::new(l),
                right: Box::new(r),
                on: info.on.clone(),
                natural: false,
            })
        }
        other => Err(RelError::Sql(format!(
            "unexpected operator inside join tree: {other:?}"
        ))),
    }
}

/// Shared implementation behind [`query_graph`] and [`push_down`].
fn analyze(
    tree: &Algebra,
    schemas: &BTreeMap<String, Schema>,
) -> Result<(QueryGraph, Vec<JoinNodeInfo>), RelError> {
    let (aggregate, (cols, pred), inner) = peel(tree);

    // Walk the join tree: collect tables and resolve per-node join attrs.
    let mut tables: Vec<String> = Vec::new();
    let mut nodes: Vec<JoinNodeInfo> = Vec::new();
    walk_joins(inner, schemas, &mut tables, &mut nodes)?;

    let has = |t: &str, attr: &str| -> bool {
        schemas
            .get(t)
            .is_some_and(|s| s.attributes().iter().any(|a| a.base_name() == attr))
    };

    // Edges from the join nodes themselves.
    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut add_edge = |a: &str, b: &str, attr: &str| {
        if let Some(e) = edges
            .iter_mut()
            .find(|e| (e.left == a && e.right == b) || (e.left == b && e.right == a))
        {
            if !e.attrs.iter().any(|x| x == attr) {
                e.attrs.push(attr.to_string());
            }
            return;
        }
        edges.push(JoinEdge {
            left: a.to_string(),
            right: b.to_string(),
            attrs: vec![attr.to_string()],
        });
    };
    for info in &nodes {
        for attr in &info.on {
            let lt = pick_table(&info.left_set, attr, &has)?;
            let rt = pick_table(&info.right_set, attr, &has)?;
            add_edge(&lt, &rt, attr);
        }
    }

    // A join attribute (by base name) is one carried by the `on` list of
    // any join node, or equated across tables in WHERE; a bare reference
    // to it is never ambiguous because the join merges those columns.
    let conjuncts: Vec<Predicate> = pred.iter().flat_map(flatten_and).collect();
    let mut join_attrs: Vec<String> = nodes.iter().flat_map(|n| n.on.iter().cloned()).collect();
    for c in &conjuncts {
        if let Predicate::Eq(Operand::Col(a), Operand::Col(b)) = c {
            let (_, na) = split_qualified(a);
            let (_, nb) = split_qualified(b);
            if na == nb && !join_attrs.iter().any(|x| x == na) {
                join_attrs.push(na.to_string());
            }
        }
    }

    // Resolves a column reference to the set of tables carrying it, with
    // the bare name.  Errors on unknown names/qualifiers and on ambiguous
    // bare names.
    let resolve = |name: &str| -> Result<(Vec<String>, String), RelError> {
        let (q, base) = split_qualified(name);
        match q {
            Some(q) => {
                if !tables.iter().any(|t| t == q) {
                    return Err(RelError::UnknownAttribute(format!(
                        "{name}: no table {q} in FROM"
                    )));
                }
                if !has(q, base) {
                    return Err(RelError::UnknownAttribute(format!(
                        "{name}: table {q} has no attribute {base}"
                    )));
                }
                Ok((vec![q.to_string()], base.to_string()))
            }
            None => {
                let carriers: Vec<String> =
                    tables.iter().filter(|t| has(t, base)).cloned().collect();
                match carriers.len() {
                    0 => Err(RelError::UnknownAttribute(base.to_string())),
                    1 => Ok((carriers, base.to_string())),
                    _ if join_attrs.iter().any(|a| a == base) => Ok((carriers, base.to_string())),
                    _ => Err(RelError::AmbiguousColumn(format!(
                        "{base} is carried by {} and is not a join attribute; qualify it",
                        carriers.join(", ")
                    ))),
                }
            }
        }
    };
    let bare = |name: &str| -> Result<String, RelError> { resolve(name).map(|(_, b)| b) };

    // Classify WHERE conjuncts.
    let mut scan_preds: Vec<(String, Predicate)> = Vec::new();
    let mut push_to = |t: &str, p: Predicate| {
        if let Some((_, acc)) = scan_preds.iter_mut().find(|(n, _)| n == t) {
            *acc = acc.clone().and(p);
        } else {
            scan_preds.push((t.to_string(), p));
        }
    };
    let mut residual_pred: Option<Predicate> = None;
    let mut keep_residual = |p: Predicate| {
        residual_pred = Some(match residual_pred.take() {
            Some(acc) => acc.and(p),
            None => p,
        });
    };
    for conjunct in conjuncts {
        // Cross-table equality: a join edge, possibly strengthening an
        // existing join node.
        if let Predicate::Eq(Operand::Col(a), Operand::Col(b)) = &conjunct {
            let (ta, na) = resolve(a)?;
            let (tb, nb) = resolve(b)?;
            let cross = ta.len() == 1 && tb.len() == 1 && ta[0] != tb[0];
            if cross {
                if na != nb {
                    return Err(RelError::Sql(format!(
                        "cross-table equality requires equal attribute names, got {na} and {nb}"
                    )));
                }
                add_edge(&ta[0], &tb[0], &na);
                // Strengthen the lowest join node covering both tables so
                // the rebuilt tree enforces the equality.
                let covering = nodes.iter_mut().find(|info| {
                    let covers = |t: &str| {
                        info.left_set.iter().any(|x| x == t)
                            || info.right_set.iter().any(|x| x == t)
                    };
                    covers(&ta[0]) && covers(&tb[0])
                });
                if let Some(info) = covering {
                    if !info.on.iter().any(|x| x == &na) {
                        info.on.push(na.clone());
                    }
                }
                continue;
            }
            if na == nb && ta == tb && ta.len() > 1 {
                // `k = k` over a merged join column: tautology.
                continue;
            }
        }
        // Single-table or join-attribute conjunct: push down.
        let mut cols_in = Vec::new();
        pred_columns(&conjunct, &mut cols_in);
        let mut carrier_sets = Vec::new();
        for c in &cols_in {
            carrier_sets.push(resolve(c)?.0);
        }
        let rewritten = map_pred_columns(&conjunct, &bare)?;
        if cols_in.is_empty() {
            keep_residual(rewritten);
            continue;
        }
        // Intersection of carrier sets: tables that carry every column the
        // conjunct mentions.
        let mut common: Vec<String> = carrier_sets[0].clone();
        for set in &carrier_sets[1..] {
            common.retain(|t| set.iter().any(|x| x == t));
        }
        match common.len() {
            0 => keep_residual(rewritten),
            1 => push_to(&common[0], rewritten),
            _ => {
                // Every mentioned column is a join attribute shared by all
                // these tables: pushing the filter to each side of an
                // equi-join preserves the result.
                for t in &common {
                    push_to(t, rewritten.clone());
                }
            }
        }
    }

    // Every join node must have attributes by now (explicit, inferred, or
    // from WHERE).
    for info in &nodes {
        if info.on.is_empty() {
            return Err(RelError::Sql(format!(
                "no join attribute between {{{}}} and {{{}}}: use NATURAL JOIN, JOIN..ON, \
                 or a WHERE equality",
                info.left_set.join(", "),
                info.right_set.join(", ")
            )));
        }
    }

    // Validate and bare-rewrite the residual projection/aggregation.
    let cols = cols
        .map(|cs| cs.iter().map(|c| bare(c)).collect::<Result<Vec<_>, _>>())
        .transpose()?;
    let aggregate = aggregate
        .map(|(gs, aggs)| -> Result<GroupBy, RelError> {
            Ok((
                gs.iter().map(|c| bare(c)).collect::<Result<Vec<_>, _>>()?,
                aggs.iter()
                    .map(|(f, c)| Ok((*f, bare(c)?)))
                    .collect::<Result<Vec<_>, RelError>>()?,
            ))
        })
        .transpose()?;

    Ok((
        QueryGraph {
            tables,
            scan_preds,
            edges,
            residual: Residual {
                pred: residual_pred,
                cols,
                aggregate,
            },
        },
        nodes,
    ))
}

/// Post-order walk of the join tree: records tables in FROM order and one
/// [`JoinNodeInfo`] per join node with its (inferred or explicit) join
/// attributes.
fn walk_joins(
    node: &Algebra,
    schemas: &BTreeMap<String, Schema>,
    tables: &mut Vec<String>,
    nodes: &mut Vec<JoinNodeInfo>,
) -> Result<Vec<String>, RelError> {
    match node {
        Algebra::Scan(t) => {
            if !schemas.contains_key(t) {
                return Err(RelError::UnknownAttribute(format!(
                    "relation {t} has no schema"
                )));
            }
            if tables.iter().any(|x| x == t) {
                return Err(RelError::DuplicateAlias(format!(
                    "relation {t} appears twice in FROM (self-joins are unsupported)"
                )));
            }
            tables.push(t.clone());
            Ok(vec![t.clone()])
        }
        Algebra::Join {
            left, right, on, ..
        } => {
            let left_set = walk_joins(left, schemas, tables, nodes)?;
            let right_set = walk_joins(right, schemas, tables, nodes)?;
            let on = if on.is_empty() {
                // Natural / comma join: shared base names across the two
                // sides (matching eval semantics).
                let mut inferred = Vec::new();
                for lt in &left_set {
                    let Some(ls) = schemas.get(lt) else { continue };
                    for a in ls.attributes() {
                        let base = a.base_name();
                        let on_right = right_set.iter().any(|rt| {
                            schemas.get(rt).is_some_and(|rs| {
                                rs.attributes().iter().any(|b| b.base_name() == base)
                            })
                        });
                        if on_right && !inferred.iter().any(|x| x == base) {
                            inferred.push(base.to_string());
                        }
                    }
                }
                inferred
            } else {
                on.clone()
            };
            let mut all = left_set.clone();
            all.extend(right_set.iter().cloned());
            nodes.push(JoinNodeInfo {
                left_set,
                right_set,
                on,
            });
            Ok(all)
        }
        other => Err(RelError::Sql(format!(
            "unexpected operator inside join tree: {other:?}"
        ))),
    }
}

/// Picks the table within one side of a join that carries `attr`.  Several
/// carriers are fine only when earlier joins already merged them on that
/// attribute — then the latest carrier stands for the merged column.
fn pick_table(
    side: &[String],
    attr: &str,
    has: &dyn Fn(&str, &str) -> bool,
) -> Result<String, RelError> {
    let carriers: Vec<&String> = side.iter().filter(|t| has(t, attr)).collect();
    match carriers.as_slice() {
        [] => Err(RelError::UnknownAttribute(format!(
            "join attribute {attr} not carried by {{{}}}",
            side.join(", ")
        ))),
        [t] => Ok((*t).clone()),
        many => Ok((*many[many.len() - 1]).clone()),
    }
}

// ---------------------------------------------------------------------------
// Lexer and parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Star,
    Comma,
    LParen,
    RParen,
    Eq,
    Lt,
    Le,
    Kw(Keyword),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Keyword {
    Select,
    From,
    Where,
    And,
    Natural,
    Join,
    On,
    Group,
    By,
    As,
    True,
    False,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Star => write!(f, "*"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Kw(k) => write!(f, "{k:?}"),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<Token>, RelError> {
    let mut tokens = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Le);
                } else {
                    tokens.push(Token::Lt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(RelError::Sql("unterminated string".to_string())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut s = c.to_string();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = s
                    .parse()
                    .map_err(|_| RelError::Sql(format!("bad integer literal {s}")))?;
                tokens.push(Token::Int(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(match s.to_ascii_lowercase().as_str() {
                    "select" => Token::Kw(Keyword::Select),
                    "from" => Token::Kw(Keyword::From),
                    "where" => Token::Kw(Keyword::Where),
                    "and" => Token::Kw(Keyword::And),
                    "natural" => Token::Kw(Keyword::Natural),
                    "join" => Token::Kw(Keyword::Join),
                    "on" => Token::Kw(Keyword::On),
                    "group" => Token::Kw(Keyword::Group),
                    "by" => Token::Kw(Keyword::By),
                    "as" => Token::Kw(Keyword::As),
                    "true" => Token::Kw(Keyword::True),
                    "false" => Token::Kw(Keyword::False),
                    _ => Token::Ident(s),
                });
            }
            other => return Err(RelError::Sql(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// FROM-clause scope: `(key, relation)` where `key` is the alias if
    /// one was given, else the relation name.
    scope: Vec<(String, String)>,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, RelError> {
        Ok(Parser {
            tokens: lex(sql)?,
            pos: 0,
            scope: Vec::new(),
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), RelError> {
        match self.next() {
            Some(Token::Kw(k)) if k == kw => Ok(()),
            other => Err(RelError::Sql(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, RelError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(RelError::Sql(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Algebra, RelError> {
        self.expect_kw(Keyword::Select)?;
        let (cols, aggs) = self.parse_select_list()?;
        self.expect_kw(Keyword::From)?;
        let mut tree = self.parse_table_ref()?;
        if matches!(self.peek(), Some(Token::Kw(Keyword::Where))) {
            self.next();
            let pred = self.parse_condition()?;
            tree = Algebra::Select {
                input: Box::new(tree),
                pred,
            };
        }
        let mut group_cols = Vec::new();
        if matches!(self.peek(), Some(Token::Kw(Keyword::Group))) {
            self.next();
            self.expect_kw(Keyword::By)?;
            group_cols.push(self.expect_ident()?);
            while matches!(self.peek(), Some(Token::Comma)) {
                self.next();
                group_cols.push(self.expect_ident()?);
            }
        }
        if let Some(t) = self.peek() {
            return Err(RelError::Sql(format!("unexpected trailing token {t}")));
        }
        if !aggs.is_empty() {
            // Aggregated query: plain columns must equal the GROUP BY list.
            if let Some(plain) = &cols {
                if *plain != group_cols {
                    return Err(RelError::Sql(
                        "non-aggregated select columns must match GROUP BY".to_string(),
                    ));
                }
            }
            tree = Algebra::Aggregate {
                input: Box::new(tree),
                group_cols,
                aggs,
            };
        } else {
            if !group_cols.is_empty() {
                return Err(RelError::Sql("GROUP BY without aggregates".to_string()));
            }
            if let Some(cols) = cols {
                tree = Algebra::Project {
                    input: Box::new(tree),
                    cols,
                };
            }
        }
        self.resolve_aliases(tree)
    }

    /// Rewrites every qualified column reference `q.c` so that `q` is the
    /// underlying relation name, erroring on qualifiers that name no FROM
    /// entry.  Aliases disappear from the tree here; downstream consumers
    /// (decomposition, the query graph, evaluation) only ever see relation
    /// names.
    fn resolve_aliases(&self, tree: Algebra) -> Result<Algebra, RelError> {
        map_columns(tree, &|name| {
            let (q, base) = split_qualified(name);
            match q {
                None => Ok(name.to_string()),
                Some(q) => match self.scope.iter().find(|(k, _)| k == q) {
                    Some((_, rel)) => Ok(format!("{rel}.{base}")),
                    None => Err(RelError::UnknownAttribute(format!(
                        "{name}: no table or alias {q} in FROM"
                    ))),
                },
            }
        })
    }

    /// `(None, [])` means `*`; aggregates are `fn(col)` items.
    #[allow(clippy::type_complexity)]
    fn parse_select_list(
        &mut self,
    ) -> Result<(Option<Vec<String>>, Vec<(AggFn, String)>), RelError> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.next();
            return Ok((None, Vec::new()));
        }
        let mut cols = Vec::new();
        let mut aggs = Vec::new();
        loop {
            let ident = self.expect_ident()?;
            if matches!(self.peek(), Some(Token::LParen)) {
                self.next();
                let col = self.expect_ident()?;
                match self.next() {
                    Some(Token::RParen) => {}
                    other => return Err(RelError::Sql(format!("expected ), found {other:?}"))),
                }
                let f = match ident.to_ascii_lowercase().as_str() {
                    "count" => AggFn::Count,
                    "sum" => AggFn::Sum,
                    "min" => AggFn::Min,
                    "max" => AggFn::Max,
                    other => return Err(RelError::Sql(format!("unknown aggregate {other}"))),
                };
                aggs.push((f, col));
            } else {
                cols.push(ident);
            }
            if matches!(self.peek(), Some(Token::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        let cols = if cols.is_empty() && !aggs.is_empty() {
            Some(Vec::new())
        } else {
            Some(cols)
        };
        Ok((cols, aggs))
    }

    /// `primary (NATURAL JOIN primary | JOIN primary ON ... | , primary)*`
    /// — builds a left-deep join tree in FROM order.
    fn parse_table_ref(&mut self) -> Result<Algebra, RelError> {
        let mut tree = self.parse_primary()?;
        loop {
            match self.peek() {
                Some(Token::Kw(Keyword::Natural)) => {
                    self.next();
                    self.expect_kw(Keyword::Join)?;
                    let right = self.parse_primary()?;
                    tree = Algebra::Join {
                        left: Box::new(tree),
                        right: Box::new(right),
                        on: vec![],
                        natural: true,
                    };
                }
                Some(Token::Kw(Keyword::Join)) => {
                    self.next();
                    let right = self.parse_primary()?;
                    self.expect_kw(Keyword::On)?;
                    let on = self.parse_on_list()?;
                    tree = Algebra::Join {
                        left: Box::new(tree),
                        right: Box::new(right),
                        on,
                        natural: false,
                    };
                }
                Some(Token::Comma) => {
                    self.next();
                    let right = self.parse_primary()?;
                    // Implicit join; the WHERE equalities (or shared
                    // attribute names) turn it into an equi-join.
                    tree = Algebra::Join {
                        left: Box::new(tree),
                        right: Box::new(right),
                        on: vec![],
                        natural: false,
                    };
                }
                _ => return Ok(tree),
            }
        }
    }

    /// One FROM entry: a relation name with an optional (`AS`) alias,
    /// registered in the parser scope.  Repeats — of an alias key or of
    /// the relation itself — are rejected: the mediation machinery
    /// addresses sources by relation name, so self-joins are out of this
    /// subset.
    fn parse_primary(&mut self) -> Result<Algebra, RelError> {
        let name = self.expect_ident()?;
        if name.contains('.') {
            return Err(RelError::Sql(format!("bad relation name {name}")));
        }
        let alias = match self.peek() {
            Some(Token::Kw(Keyword::As)) => {
                self.next();
                Some(self.expect_ident()?)
            }
            Some(Token::Ident(_)) => match self.next() {
                Some(Token::Ident(a)) => Some(a),
                _ => unreachable!("peeked an identifier"),
            },
            _ => None,
        };
        let key = alias.unwrap_or_else(|| name.clone());
        if key.contains('.') {
            return Err(RelError::Sql(format!("bad table alias {key}")));
        }
        for (k, rel) in &self.scope {
            if *k == key {
                return Err(RelError::DuplicateAlias(key));
            }
            if *rel == name {
                return Err(RelError::DuplicateAlias(format!(
                    "relation {name} appears twice in FROM (self-joins are unsupported)"
                )));
            }
        }
        self.scope.push((key, name.clone()));
        Ok(Algebra::Scan(name))
    }

    /// `col = col (AND col = col)*` — each equality must pair the same
    /// base attribute name; qualifiers must name tables already in scope.
    fn parse_on_list(&mut self) -> Result<Vec<String>, RelError> {
        let mut on: Vec<String> = Vec::new();
        loop {
            let a = self.expect_ident()?;
            match self.next() {
                Some(Token::Eq) => {}
                other => return Err(RelError::Sql(format!("expected = in ON, found {other:?}"))),
            }
            let b = self.expect_ident()?;
            let (qa, na) = split_qualified(&a);
            let (qb, nb) = split_qualified(&b);
            if na != nb {
                return Err(RelError::Sql(format!(
                    "ON requires equal attribute names, got {na} and {nb}"
                )));
            }
            for q in [qa, qb].into_iter().flatten() {
                if !self.scope.iter().any(|(k, _)| k == q) {
                    return Err(RelError::UnknownAttribute(format!(
                        "{q}.{na}: no table or alias {q} in FROM"
                    )));
                }
            }
            if !on.iter().any(|x| x == na) {
                on.push(na.to_string());
            }
            if matches!(self.peek(), Some(Token::Kw(Keyword::And))) {
                self.next();
            } else {
                break;
            }
        }
        Ok(on)
    }

    fn parse_condition(&mut self) -> Result<Predicate, RelError> {
        let mut pred = self.parse_atom()?;
        while matches!(self.peek(), Some(Token::Kw(Keyword::And))) {
            self.next();
            pred = pred.and(self.parse_atom()?);
        }
        Ok(pred)
    }

    fn parse_atom(&mut self) -> Result<Predicate, RelError> {
        let left = self.parse_operand()?;
        let op = self.next();
        let right = self.parse_operand()?;
        match op {
            Some(Token::Eq) => Ok(Predicate::Eq(left, right)),
            Some(Token::Lt) => Ok(Predicate::Lt(left, right)),
            Some(Token::Le) => Ok(Predicate::Le(left, right)),
            other => Err(RelError::Sql(format!(
                "expected comparison, found {other:?}"
            ))),
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, RelError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(Operand::Col(s)),
            Some(Token::Int(v)) => Ok(Operand::Lit(Value::Int(v))),
            Some(Token::Str(s)) => Ok(Operand::Lit(Value::Str(s))),
            Some(Token::Kw(Keyword::True)) => Ok(Operand::Lit(Value::Bool(true))),
            Some(Token::Kw(Keyword::False)) => Ok(Operand::Lit(Value::Bool(false))),
            other => Err(RelError::Sql(format!("expected operand, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Type;

    fn catalog() -> HashMap<String, Relation> {
        let mut c = HashMap::new();
        c.insert(
            "patients".to_string(),
            Relation::build(
                Schema::new(&[("ssn", Type::Int), ("name", Type::Str)]),
                vec![
                    vec![Value::Int(1), Value::from("ada")],
                    vec![Value::Int(2), Value::from("grace")],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "claims".to_string(),
            Relation::build(
                Schema::new(&[("ssn", Type::Int), ("amount", Type::Int)]),
                vec![
                    vec![Value::Int(2), Value::Int(500)],
                    vec![Value::Int(3), Value::Int(900)],
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn parse_simple_select() {
        let tree = parse("select * from patients").unwrap();
        assert_eq!(tree, Algebra::Scan("patients".to_string()));
        assert_eq!(tree.eval(&catalog()).unwrap().len(), 2);
    }

    #[test]
    fn parse_projection_and_filter() {
        let tree = parse("select name from patients where ssn = 2").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].at(0), &Value::from("grace"));
    }

    #[test]
    fn parse_natural_join() {
        let tree = parse("SELECT * FROM patients NATURAL JOIN claims").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().attr_names(), vec!["ssn", "name", "amount"]);
    }

    #[test]
    fn parse_join_on() {
        let tree =
            parse("select * from patients join claims on patients.ssn = claims.ssn").unwrap();
        assert_eq!(tree.eval(&catalog()).unwrap().len(), 1);
    }

    #[test]
    fn parse_string_and_bool_literals() {
        let tree = parse("select * from patients where name = 'ada'").unwrap();
        assert_eq!(tree.eval(&catalog()).unwrap().len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("select").is_err());
        assert!(parse("select * from").is_err());
        assert!(parse("select * from t where").is_err());
        // `t x` is an alias, so the trailing token is `y`.
        assert!(parse("select * from t x y").is_err());
        assert!(parse("select * from t where a = 'unterminated").is_err());
        assert!(parse("select * from a join b on a.x = b.y").is_err());
    }

    #[test]
    fn parse_alias_resolves_to_relation_name() {
        let tree = parse("select p.name from patients as p").unwrap();
        assert_eq!(
            tree,
            Algebra::Project {
                input: Box::new(Algebra::Scan("patients".to_string())),
                cols: vec!["patients.name".to_string()],
            },
            "qualified refs must carry the relation name, not the alias"
        );
        let d = parse("select * from patients p, claims c where p.ssn = c.ssn").unwrap();
        let d = decompose(&d).unwrap();
        assert_eq!(d.join.left, "patients");
        assert_eq!(d.join.right, "claims");
        assert_eq!(d.join.attrs, vec!["ssn"]);
    }

    #[test]
    fn parse_rejects_duplicate_alias_and_self_join() {
        assert!(matches!(
            parse("select * from a x, b x"),
            Err(RelError::DuplicateAlias(_))
        ));
        assert!(matches!(
            parse("select * from a, a"),
            Err(RelError::DuplicateAlias(_))
        ));
        assert!(matches!(
            parse("select * from a p, a q"),
            Err(RelError::DuplicateAlias(_))
        ));
    }

    #[test]
    fn parse_rejects_unknown_qualifier() {
        assert!(matches!(
            parse("select * from a, b where c.k = b.k"),
            Err(RelError::UnknownAttribute(_))
        ));
        assert!(matches!(
            parse("select ghost.k from a, b where a.k = b.k"),
            Err(RelError::UnknownAttribute(_))
        ));
        // ON qualifiers are checked against the scope parsed so far.
        assert!(matches!(
            parse("select * from a join b on c.k = b.k"),
            Err(RelError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn parse_multi_conjunct_on() {
        let tree = parse("select * from a join b on a.k = b.k and a.j = b.j").unwrap();
        let Algebra::Join { on, .. } = &tree else {
            panic!("expected join, got {tree:?}");
        };
        assert_eq!(on, &vec!["k".to_string(), "j".to_string()]);
    }

    #[test]
    fn parse_three_table_chain_is_left_deep() {
        let tree = parse("select * from a join b on a.k = b.k join c on b.j = c.j").unwrap();
        let Algebra::Join {
            left, right, on, ..
        } = &tree
        else {
            panic!("expected join");
        };
        assert_eq!(on, &vec!["j".to_string()]);
        assert_eq!(**right, Algebra::Scan("c".to_string()));
        let Algebra::Join {
            left: ll,
            right: lr,
            ..
        } = left.as_ref()
        else {
            panic!("expected nested join");
        };
        assert_eq!(**ll, Algebra::Scan("a".to_string()));
        assert_eq!(**lr, Algebra::Scan("b".to_string()));
        assert_eq!(tree.scans(), vec!["a", "b", "c"]);
    }

    #[test]
    fn decompose_natural_join() {
        let tree = parse("select * from patients natural join claims").unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.q1, "select * from patients");
        assert_eq!(d.q2, "select * from claims");
        assert_eq!(d.join.left, "patients");
        assert_eq!(d.join.right, "claims");
        // NATURAL JOIN leaves `attrs` to be inferred from schemas at run
        // time — here the parse carries no explicit attribute, so attrs
        // comes from ON/WHERE only.
        assert!(d.join.attrs.is_empty() || d.join.attrs == vec!["ssn"]);
    }

    #[test]
    fn decompose_where_join() {
        let tree = parse(
            "select * from patients, claims where patients.ssn = claims.ssn and amount < 600",
        )
        .unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.join.attrs, vec!["ssn"]);
        assert!(d.residual.pred.is_some());
        assert!(d.residual.cols.is_none());
    }

    #[test]
    fn decompose_with_projection() {
        let tree = parse("select name from patients join claims on ssn = ssn").unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.join.attrs, vec!["ssn"]);
        assert_eq!(d.residual.cols, Some(vec!["name".to_string()]));
    }

    #[test]
    fn decompose_rejects_single_relation() {
        let tree = parse("select * from patients").unwrap();
        assert!(decompose(&tree).is_err());
    }

    #[test]
    fn decompose_rejects_missing_join_attr() {
        let tree = parse("select * from patients, claims where amount < 100").unwrap();
        assert!(decompose(&tree).is_err());
    }

    #[test]
    fn parse_group_by_aggregates() {
        let tree =
            parse("select ssn, count(amount), sum(amount) from claims group by ssn").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(
            r.schema().attr_names(),
            vec!["ssn", "count_amount", "sum_amount"]
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parse_global_aggregate() {
        let tree = parse("select sum(amount) from claims").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].at(0), &Value::Int(1400));
    }

    #[test]
    fn aggregate_parse_errors() {
        // GROUP BY without aggregates.
        assert!(parse("select ssn from claims group by ssn").is_err());
        // Plain columns not matching GROUP BY.
        assert!(parse("select amount, count(ssn) from claims group by ssn").is_err());
        // Unknown aggregate function.
        assert!(parse("select median(amount) from claims").is_err());
        // Unbalanced parens.
        assert!(parse("select sum(amount from claims").is_err());
    }

    #[test]
    fn decompose_peels_aggregation_into_residual() {
        let tree = parse("select k, sum(v) from a, b where a.k = b.k group by k").unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.join.attrs, vec!["k"]);
        let (groups, aggs) = d.residual.aggregate.expect("aggregate residual");
        assert_eq!(groups, vec!["k"]);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn scans_lists_base_relations() {
        let tree = parse("select * from a natural join b").unwrap();
        assert_eq!(tree.scans(), vec!["a", "b"]);
    }

    /// Chain schemas t0(k0,v0) – t1(k0,k1,v1) – t2(k1,k2,v2).
    fn chain_schemas() -> BTreeMap<String, Schema> {
        let mut m = BTreeMap::new();
        m.insert(
            "t0".to_string(),
            Schema::new(&[("k0", Type::Int), ("v0", Type::Int)]),
        );
        m.insert(
            "t1".to_string(),
            Schema::new(&[("k0", Type::Int), ("k1", Type::Int), ("v1", Type::Int)]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(&[("k1", Type::Int), ("k2", Type::Int), ("v2", Type::Int)]),
        );
        m
    }

    #[test]
    fn query_graph_three_table_chain() {
        let tree =
            parse("select * from t0, t1, t2 where t0.k0 = t1.k0 and t1.k1 = t2.k1 and v2 < 10")
                .unwrap();
        let g = query_graph(&tree, &chain_schemas()).unwrap();
        assert_eq!(g.tables, vec!["t0", "t1", "t2"]);
        assert_eq!(g.edge_attrs("t0", "t1"), Some(&["k0".to_string()][..]));
        assert_eq!(g.edge_attrs("t1", "t2"), Some(&["k1".to_string()][..]));
        assert_eq!(g.edge_attrs("t0", "t2"), None);
        // `v2 < 10` is single-table: pushed to t2, not residual.
        assert_eq!(
            g.scan_pred("t2"),
            Some(&Predicate::Lt(Operand::col("v2"), Operand::lit(10i64)))
        );
        assert!(g.residual.pred.is_none());
    }

    #[test]
    fn query_graph_pushes_join_attr_filter_to_all_carriers() {
        let tree = parse("select * from t0 natural join t1 where k0 <= 3").unwrap();
        let g = query_graph(&tree, &chain_schemas()).unwrap();
        let expect = Predicate::Le(Operand::col("k0"), Operand::lit(3i64));
        assert_eq!(g.scan_pred("t0"), Some(&expect));
        assert_eq!(g.scan_pred("t1"), Some(&expect));
        assert!(g.residual.pred.is_none());
    }

    #[test]
    fn query_graph_rejects_ambiguous_and_unknown_columns() {
        // `y` lives in both tables but the join is on `x` only, so a bare
        // `y` is ambiguous (evaluating the join would even panic on the
        // duplicate column — the typed error fires first).
        let mut schemas = BTreeMap::new();
        schemas.insert(
            "a".to_string(),
            Schema::new(&[("x", Type::Int), ("y", Type::Int), ("va", Type::Int)]),
        );
        schemas.insert(
            "b".to_string(),
            Schema::new(&[("x", Type::Int), ("y", Type::Int), ("vb", Type::Int)]),
        );
        let tree = parse("select * from a join b on a.x = b.x where y < 5").unwrap();
        assert!(matches!(
            query_graph(&tree, &schemas),
            Err(RelError::AmbiguousColumn(_))
        ));
        let schemas = chain_schemas();
        // Unknown bare column.
        let tree = parse("select * from t0 natural join t1 where ghost = 1").unwrap();
        assert!(matches!(
            query_graph(&tree, &schemas),
            Err(RelError::UnknownAttribute(_))
        ));
        // Qualified column whose table lacks the attribute.
        let tree = parse("select * from t0 natural join t1 where t0.v1 = 1").unwrap();
        assert!(matches!(
            query_graph(&tree, &schemas),
            Err(RelError::UnknownAttribute(_))
        ));
        // Scan of a relation with no schema.
        let tree = parse("select * from t0 natural join t9").unwrap();
        assert!(matches!(
            query_graph(&tree, &schemas),
            Err(RelError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn query_graph_merges_where_equality_into_on_edge() {
        let tree = parse("select * from t0 join t1 on t0.k0 = t1.k0 where t0.v0 = t1.v0").unwrap();
        let mut schemas = chain_schemas();
        schemas.insert(
            "t1".to_string(),
            Schema::new(&[("k0", Type::Int), ("v0", Type::Int)]),
        );
        // v0 now lives in both; the WHERE equality makes it a join attr.
        let g = query_graph(&tree, &schemas).unwrap();
        assert_eq!(
            g.edge_attrs("t0", "t1"),
            Some(&["k0".to_string(), "v0".to_string()][..])
        );
        assert!(g.residual.pred.is_none());
    }

    #[test]
    fn push_down_is_result_equivalent() {
        let mut catalog = HashMap::new();
        catalog.insert(
            "t0".to_string(),
            Relation::build(
                Schema::new(&[("k0", Type::Int), ("v0", Type::Int)]),
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            )
            .unwrap(),
        );
        catalog.insert(
            "t1".to_string(),
            Relation::build(
                Schema::new(&[("k0", Type::Int), ("k1", Type::Int), ("v1", Type::Int)]),
                vec![
                    vec![Value::Int(1), Value::Int(7), Value::Int(100)],
                    vec![Value::Int(2), Value::Int(8), Value::Int(200)],
                ],
            )
            .unwrap(),
        );
        catalog.insert(
            "t2".to_string(),
            Relation::build(
                Schema::new(&[("k1", Type::Int), ("v2", Type::Int)]),
                vec![
                    vec![Value::Int(7), Value::Int(1000)],
                    vec![Value::Int(8), Value::Int(2000)],
                    vec![Value::Int(9), Value::Int(3000)],
                ],
            )
            .unwrap(),
        );
        let schemas: BTreeMap<String, Schema> = catalog
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();
        let tree =
            parse("select * from t0 natural join t1 natural join t2 where v0 <= 20 and v2 < 2500")
                .unwrap();
        let pushed = push_down(&tree, &schemas).unwrap();
        let a = tree.eval(&catalog).unwrap();
        let b = pushed.eval(&catalog).unwrap();
        assert_eq!(a.schema().attr_names(), b.schema().attr_names());
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(b.len(), 2);
        // The pushed tree really did move the filters below the joins.
        fn has_select_above_join(t: &Algebra) -> bool {
            match t {
                Algebra::Select { input, .. } => {
                    matches!(input.as_ref(), Algebra::Join { .. })
                }
                Algebra::Project { input, .. } | Algebra::Aggregate { input, .. } => {
                    has_select_above_join(input)
                }
                _ => false,
            }
        }
        assert!(!has_select_above_join(&pushed));
    }
}
