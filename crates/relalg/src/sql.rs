//! A SQL subset and the "SQL2Algebra" translation.
//!
//! The paper (Section 2) has the mediator transform SQL queries "into a
//! so-called 'algebra tree' (with relational operators in the inner nodes
//! of the tree and partial queries at the leaves) by using the
//! 'SQL2Algebra' library".  This module is that library:
//!
//! * [`parse`] — SQL text → [`Algebra`] tree,
//! * [`Algebra::eval`] — evaluate a tree against a catalog of relations,
//! * [`decompose`] — the mediator's step 2 of Listing 1: split a two-
//!   relation JOIN query into `select *` partial queries plus a
//!   [`JoinSpec`], with any residual selection/projection kept for post-
//!   processing.
//!
//! Supported grammar:
//!
//! ```text
//! query  := SELECT (* | col[, col]*) FROM table_ref [WHERE cond]
//! table_ref := ident
//!            | ident NATURAL JOIN ident
//!            | ident JOIN ident ON col = col
//!            | ident, ident            -- equi-join via WHERE
//! cond   := atom (AND atom)*
//! atom   := operand (= | < | <=) operand
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::aggregate::AggFn;
use crate::predicate::{Operand, Predicate};
use crate::relation::Relation;
use crate::value::Value;
use crate::RelError;

/// A relational algebra tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Algebra {
    /// Leaf: scan a named base relation (a partial query target).
    Scan(String),
    /// σ.
    Select {
        /// Input expression.
        input: Box<Algebra>,
        /// Filter predicate.
        pred: Predicate,
    },
    /// π.
    Project {
        /// Input expression.
        input: Box<Algebra>,
        /// Output column names, in order.
        cols: Vec<String>,
    },
    /// γ — GROUP BY with aggregates.
    Aggregate {
        /// Input expression.
        input: Box<Algebra>,
        /// Grouping columns.
        group_cols: Vec<String>,
        /// Aggregates `(fn, column)`.
        aggs: Vec<(AggFn, String)>,
    },
    /// ⨝ on equal base names.
    Join {
        /// Left input.
        left: Box<Algebra>,
        /// Right input.
        right: Box<Algebra>,
        /// Explicit join attributes (base names).
        on: Vec<String>,
        /// True for `NATURAL JOIN` (join attributes inferred from the
        /// schemas — in the mediator, from the global-schema embedding).
        natural: bool,
    },
}

impl Algebra {
    /// Evaluates the tree against named base relations.
    pub fn eval(&self, catalog: &HashMap<String, Relation>) -> Result<Relation, RelError> {
        match self {
            Algebra::Scan(name) => catalog
                .get(name)
                .cloned()
                .ok_or_else(|| RelError::UnknownAttribute(format!("relation {name}"))),
            Algebra::Select { input, pred } => input.eval(catalog)?.select(pred),
            Algebra::Project { input, cols } => {
                let rel = input.eval(catalog)?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                rel.project(&refs)
            }
            Algebra::Aggregate {
                input,
                group_cols,
                aggs,
            } => {
                let rel = input.eval(catalog)?;
                let groups: Vec<&str> = group_cols.iter().map(String::as_str).collect();
                let agg_refs: Vec<(AggFn, &str)> =
                    aggs.iter().map(|(f, c)| (*f, c.as_str())).collect();
                rel.aggregate(&groups, &agg_refs)
            }
            Algebra::Join {
                left,
                right,
                on,
                natural,
            } => {
                let l = left.eval(catalog)?;
                let r = right.eval(catalog)?;
                if *natural || on.is_empty() {
                    l.natural_join(&r)
                } else {
                    l.join_on(&r, on)
                }
            }
        }
    }

    /// Names of the base relations scanned by this tree.
    pub fn scans(&self) -> Vec<&str> {
        match self {
            Algebra::Scan(name) => vec![name.as_str()],
            Algebra::Select { input, .. }
            | Algebra::Project { input, .. }
            | Algebra::Aggregate { input, .. } => input.scans(),
            Algebra::Join { left, right, .. } => {
                let mut s = left.scans();
                s.extend(right.scans());
                s
            }
        }
    }
}

/// The JOIN the mediator must mediate: two source relations and their join
/// attributes (the paper's `A_join`, generalized to several attributes as
/// suggested in the future-work section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Left relation name (source `S1`).
    pub left: String,
    /// Right relation name (source `S2`).
    pub right: String,
    /// Join attribute base names.
    pub attrs: Vec<String>,
}

/// A GROUP BY clause: grouping columns plus `(function, column)` aggregates.
pub type GroupBy = (Vec<String>, Vec<(AggFn, String)>);

/// Residual work the *client* performs after the mediated join (projection
/// and non-join selection; Listing 1 partial queries are plain `select *`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Residual {
    /// Post-join filter.
    pub pred: Option<Predicate>,
    /// Post-join projection.
    pub cols: Option<Vec<String>>,
    /// Post-join aggregation (GROUP BY columns, aggregates).
    pub aggregate: Option<GroupBy>,
}

/// The mediator's decomposition: partial queries plus join spec plus
/// residual client work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// `select * from <left>` — the partial query `q1`.
    pub q1: String,
    /// `select * from <right>` — the partial query `q2`.
    pub q2: String,
    /// The JOIN to execute over encrypted partial results.
    pub join: JoinSpec,
    /// What remains for the client.
    pub residual: Residual,
}

/// Parses SQL text into an algebra tree.
pub fn parse(sql: &str) -> Result<Algebra, RelError> {
    Parser::new(sql)?.parse_query()
}

/// Decomposes a parsed two-relation join query (Listing 1, step 2).
///
/// Join-attribute equalities in the `WHERE` clause (e.g.
/// `R1.ssn = R2.ssn`) become join attributes; all other conjuncts and any
/// projection become the client's residual work.
pub fn decompose(tree: &Algebra) -> Result<Decomposition, RelError> {
    // Peel aggregation (always client-side work in the mediated setting).
    let (aggregate, tree) = match tree {
        Algebra::Aggregate {
            input,
            group_cols,
            aggs,
        } => (Some((group_cols.clone(), aggs.clone())), input.as_ref()),
        other => (None, other),
    };
    // Peel projection.
    let (cols, inner) = match tree {
        Algebra::Project { input, cols } => (Some(cols.clone()), input.as_ref()),
        other => (None, other),
    };
    // Peel selection.
    let (pred, inner) = match inner {
        Algebra::Select { input, pred } => (Some(pred.clone()), input.as_ref()),
        other => (None, other),
    };
    let Algebra::Join {
        left,
        right,
        on,
        natural,
    } = inner
    else {
        return Err(RelError::Sql(
            "query is not a two-relation join".to_string(),
        ));
    };
    let (Algebra::Scan(l), Algebra::Scan(r)) = (left.as_ref(), right.as_ref()) else {
        return Err(RelError::Sql(
            "join inputs must be base relations".to_string(),
        ));
    };

    // Split WHERE conjuncts into join equalities and residual filters.
    let mut attrs = on.clone();
    let mut residual_pred: Option<Predicate> = None;
    if let Some(p) = pred {
        for conjunct in flatten_and(&p) {
            match join_attr_of(&conjunct, l, r) {
                Some(a) if !attrs.contains(&a) => attrs.push(a),
                Some(_) => {}
                None => {
                    residual_pred = Some(match residual_pred.take() {
                        Some(acc) => acc.and(conjunct),
                        None => conjunct,
                    });
                }
            }
        }
    }
    if attrs.is_empty() && !natural {
        return Err(RelError::Sql(
            "no join attribute: use NATURAL JOIN, JOIN..ON, or a WHERE equality".to_string(),
        ));
    }
    Ok(Decomposition {
        q1: format!("select * from {l}"),
        q2: format!("select * from {r}"),
        join: JoinSpec {
            left: l.clone(),
            right: r.clone(),
            attrs,
        },
        residual: Residual {
            pred: residual_pred,
            cols,
            aggregate,
        },
    })
}

/// Conjuncts of a predicate (flattening nested ANDs).
fn flatten_and(p: &Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(a, b) => {
            let mut out = flatten_and(a);
            out.extend(flatten_and(b));
            out
        }
        Predicate::True => vec![],
        other => vec![other.clone()],
    }
}

/// If `p` is `l.x = r.x` (one column from each relation, equal base names),
/// returns the base name.
fn join_attr_of(p: &Predicate, l: &str, r: &str) -> Option<String> {
    let Predicate::Eq(Operand::Col(a), Operand::Col(b)) = p else {
        return None;
    };
    let (qa, na) = split_qualified(a);
    let (qb, nb) = split_qualified(b);
    if na != nb {
        return None;
    }
    match (qa, qb) {
        (Some(x), Some(y)) if (x == l && y == r) || (x == r && y == l) => Some(na.to_string()),
        (None, None) => Some(na.to_string()),
        _ => None,
    }
}

fn split_qualified(name: &str) -> (Option<&str>, &str) {
    match name.rsplit_once('.') {
        Some((q, n)) => (Some(q), n),
        None => (None, name),
    }
}

// ---------------------------------------------------------------------------
// Lexer and parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Star,
    Comma,
    LParen,
    RParen,
    Eq,
    Lt,
    Le,
    Kw(Keyword),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Keyword {
    Select,
    From,
    Where,
    And,
    Natural,
    Join,
    On,
    Group,
    By,
    True,
    False,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Star => write!(f, "*"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Kw(k) => write!(f, "{k:?}"),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<Token>, RelError> {
    let mut tokens = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Le);
                } else {
                    tokens.push(Token::Lt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(RelError::Sql("unterminated string".to_string())),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut s = c.to_string();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = s
                    .parse()
                    .map_err(|_| RelError::Sql(format!("bad integer literal {s}")))?;
                tokens.push(Token::Int(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '.' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(match s.to_ascii_lowercase().as_str() {
                    "select" => Token::Kw(Keyword::Select),
                    "from" => Token::Kw(Keyword::From),
                    "where" => Token::Kw(Keyword::Where),
                    "and" => Token::Kw(Keyword::And),
                    "natural" => Token::Kw(Keyword::Natural),
                    "join" => Token::Kw(Keyword::Join),
                    "on" => Token::Kw(Keyword::On),
                    "group" => Token::Kw(Keyword::Group),
                    "by" => Token::Kw(Keyword::By),
                    "true" => Token::Kw(Keyword::True),
                    "false" => Token::Kw(Keyword::False),
                    _ => Token::Ident(s),
                });
            }
            other => return Err(RelError::Sql(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self, RelError> {
        Ok(Parser {
            tokens: lex(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), RelError> {
        match self.next() {
            Some(Token::Kw(k)) if k == kw => Ok(()),
            other => Err(RelError::Sql(format!("expected {kw:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, RelError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(RelError::Sql(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Algebra, RelError> {
        self.expect_kw(Keyword::Select)?;
        let (cols, aggs) = self.parse_select_list()?;
        self.expect_kw(Keyword::From)?;
        let mut tree = self.parse_table_ref()?;
        if matches!(self.peek(), Some(Token::Kw(Keyword::Where))) {
            self.next();
            let pred = self.parse_condition()?;
            tree = Algebra::Select {
                input: Box::new(tree),
                pred,
            };
        }
        let mut group_cols = Vec::new();
        if matches!(self.peek(), Some(Token::Kw(Keyword::Group))) {
            self.next();
            self.expect_kw(Keyword::By)?;
            group_cols.push(self.expect_ident()?);
            while matches!(self.peek(), Some(Token::Comma)) {
                self.next();
                group_cols.push(self.expect_ident()?);
            }
        }
        if let Some(t) = self.peek() {
            return Err(RelError::Sql(format!("unexpected trailing token {t}")));
        }
        if !aggs.is_empty() {
            // Aggregated query: plain columns must equal the GROUP BY list.
            if let Some(plain) = &cols {
                if *plain != group_cols {
                    return Err(RelError::Sql(
                        "non-aggregated select columns must match GROUP BY".to_string(),
                    ));
                }
            }
            tree = Algebra::Aggregate {
                input: Box::new(tree),
                group_cols,
                aggs,
            };
        } else {
            if !group_cols.is_empty() {
                return Err(RelError::Sql("GROUP BY without aggregates".to_string()));
            }
            if let Some(cols) = cols {
                tree = Algebra::Project {
                    input: Box::new(tree),
                    cols,
                };
            }
        }
        Ok(tree)
    }

    /// `(None, [])` means `*`; aggregates are `fn(col)` items.
    #[allow(clippy::type_complexity)]
    fn parse_select_list(
        &mut self,
    ) -> Result<(Option<Vec<String>>, Vec<(AggFn, String)>), RelError> {
        if matches!(self.peek(), Some(Token::Star)) {
            self.next();
            return Ok((None, Vec::new()));
        }
        let mut cols = Vec::new();
        let mut aggs = Vec::new();
        loop {
            let ident = self.expect_ident()?;
            if matches!(self.peek(), Some(Token::LParen)) {
                self.next();
                let col = self.expect_ident()?;
                match self.next() {
                    Some(Token::RParen) => {}
                    other => return Err(RelError::Sql(format!("expected ), found {other:?}"))),
                }
                let f = match ident.to_ascii_lowercase().as_str() {
                    "count" => AggFn::Count,
                    "sum" => AggFn::Sum,
                    "min" => AggFn::Min,
                    "max" => AggFn::Max,
                    other => return Err(RelError::Sql(format!("unknown aggregate {other}"))),
                };
                aggs.push((f, col));
            } else {
                cols.push(ident);
            }
            if matches!(self.peek(), Some(Token::Comma)) {
                self.next();
            } else {
                break;
            }
        }
        let cols = if cols.is_empty() && !aggs.is_empty() {
            Some(Vec::new())
        } else {
            Some(cols)
        };
        Ok((cols, aggs))
    }

    fn parse_table_ref(&mut self) -> Result<Algebra, RelError> {
        let first = self.expect_ident()?;
        let left = Algebra::Scan(first);
        match self.peek() {
            Some(Token::Kw(Keyword::Natural)) => {
                self.next();
                self.expect_kw(Keyword::Join)?;
                let right = Algebra::Scan(self.expect_ident()?);
                Ok(Algebra::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: vec![],
                    natural: true,
                })
            }
            Some(Token::Kw(Keyword::Join)) => {
                self.next();
                let right = Algebra::Scan(self.expect_ident()?);
                self.expect_kw(Keyword::On)?;
                let a = self.expect_ident()?;
                match self.next() {
                    Some(Token::Eq) => {}
                    other => {
                        return Err(RelError::Sql(format!("expected = in ON, found {other:?}")))
                    }
                }
                let b = self.expect_ident()?;
                let (_, na) = split_qualified(&a);
                let (_, nb) = split_qualified(&b);
                if na != nb {
                    return Err(RelError::Sql(format!(
                        "ON requires equal attribute names, got {na} and {nb}"
                    )));
                }
                Ok(Algebra::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: vec![na.to_string()],
                    natural: false,
                })
            }
            Some(Token::Comma) => {
                self.next();
                let right = Algebra::Scan(self.expect_ident()?);
                // Implicit cross; the WHERE equalities turn it into a join
                // during decomposition.
                Ok(Algebra::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: vec![],
                    natural: false,
                })
            }
            _ => Ok(left),
        }
    }

    fn parse_condition(&mut self) -> Result<Predicate, RelError> {
        let mut pred = self.parse_atom()?;
        while matches!(self.peek(), Some(Token::Kw(Keyword::And))) {
            self.next();
            pred = pred.and(self.parse_atom()?);
        }
        Ok(pred)
    }

    fn parse_atom(&mut self) -> Result<Predicate, RelError> {
        let left = self.parse_operand()?;
        let op = self.next();
        let right = self.parse_operand()?;
        match op {
            Some(Token::Eq) => Ok(Predicate::Eq(left, right)),
            Some(Token::Lt) => Ok(Predicate::Lt(left, right)),
            Some(Token::Le) => Ok(Predicate::Le(left, right)),
            other => Err(RelError::Sql(format!(
                "expected comparison, found {other:?}"
            ))),
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, RelError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(Operand::Col(s)),
            Some(Token::Int(v)) => Ok(Operand::Lit(Value::Int(v))),
            Some(Token::Str(s)) => Ok(Operand::Lit(Value::Str(s))),
            Some(Token::Kw(Keyword::True)) => Ok(Operand::Lit(Value::Bool(true))),
            Some(Token::Kw(Keyword::False)) => Ok(Operand::Lit(Value::Bool(false))),
            other => Err(RelError::Sql(format!("expected operand, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Type;

    fn catalog() -> HashMap<String, Relation> {
        let mut c = HashMap::new();
        c.insert(
            "patients".to_string(),
            Relation::build(
                Schema::new(&[("ssn", Type::Int), ("name", Type::Str)]),
                vec![
                    vec![Value::Int(1), Value::from("ada")],
                    vec![Value::Int(2), Value::from("grace")],
                ],
            )
            .unwrap(),
        );
        c.insert(
            "claims".to_string(),
            Relation::build(
                Schema::new(&[("ssn", Type::Int), ("amount", Type::Int)]),
                vec![
                    vec![Value::Int(2), Value::Int(500)],
                    vec![Value::Int(3), Value::Int(900)],
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn parse_simple_select() {
        let tree = parse("select * from patients").unwrap();
        assert_eq!(tree, Algebra::Scan("patients".to_string()));
        assert_eq!(tree.eval(&catalog()).unwrap().len(), 2);
    }

    #[test]
    fn parse_projection_and_filter() {
        let tree = parse("select name from patients where ssn = 2").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].at(0), &Value::from("grace"));
    }

    #[test]
    fn parse_natural_join() {
        let tree = parse("SELECT * FROM patients NATURAL JOIN claims").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().attr_names(), vec!["ssn", "name", "amount"]);
    }

    #[test]
    fn parse_join_on() {
        let tree =
            parse("select * from patients join claims on patients.ssn = claims.ssn").unwrap();
        assert_eq!(tree.eval(&catalog()).unwrap().len(), 1);
    }

    #[test]
    fn parse_string_and_bool_literals() {
        let tree = parse("select * from patients where name = 'ada'").unwrap();
        assert_eq!(tree.eval(&catalog()).unwrap().len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("").is_err());
        assert!(parse("select").is_err());
        assert!(parse("select * from").is_err());
        assert!(parse("select * from t where").is_err());
        assert!(parse("select * from t extra").is_err());
        assert!(parse("select * from t where a = 'unterminated").is_err());
        assert!(parse("select * from a join b on a.x = b.y").is_err());
    }

    #[test]
    fn decompose_natural_join() {
        let tree = parse("select * from patients natural join claims").unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.q1, "select * from patients");
        assert_eq!(d.q2, "select * from claims");
        assert_eq!(d.join.left, "patients");
        assert_eq!(d.join.right, "claims");
        // NATURAL JOIN leaves `attrs` to be inferred from schemas at run
        // time — here the parse carries no explicit attribute, so attrs
        // comes from ON/WHERE only.
        assert!(d.join.attrs.is_empty() || d.join.attrs == vec!["ssn"]);
    }

    #[test]
    fn decompose_where_join() {
        let tree = parse(
            "select * from patients, claims where patients.ssn = claims.ssn and amount < 600",
        )
        .unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.join.attrs, vec!["ssn"]);
        assert!(d.residual.pred.is_some());
        assert!(d.residual.cols.is_none());
    }

    #[test]
    fn decompose_with_projection() {
        let tree = parse("select name from patients join claims on ssn = ssn").unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.join.attrs, vec!["ssn"]);
        assert_eq!(d.residual.cols, Some(vec!["name".to_string()]));
    }

    #[test]
    fn decompose_rejects_single_relation() {
        let tree = parse("select * from patients").unwrap();
        assert!(decompose(&tree).is_err());
    }

    #[test]
    fn decompose_rejects_missing_join_attr() {
        let tree = parse("select * from patients, claims where amount < 100").unwrap();
        assert!(decompose(&tree).is_err());
    }

    #[test]
    fn parse_group_by_aggregates() {
        let tree =
            parse("select ssn, count(amount), sum(amount) from claims group by ssn").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(
            r.schema().attr_names(),
            vec!["ssn", "count_amount", "sum_amount"]
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn parse_global_aggregate() {
        let tree = parse("select sum(amount) from claims").unwrap();
        let r = tree.eval(&catalog()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].at(0), &Value::Int(1400));
    }

    #[test]
    fn aggregate_parse_errors() {
        // GROUP BY without aggregates.
        assert!(parse("select ssn from claims group by ssn").is_err());
        // Plain columns not matching GROUP BY.
        assert!(parse("select amount, count(ssn) from claims group by ssn").is_err());
        // Unknown aggregate function.
        assert!(parse("select median(amount) from claims").is_err());
        // Unbalanced parens.
        assert!(parse("select sum(amount from claims").is_err());
    }

    #[test]
    fn decompose_peels_aggregation_into_residual() {
        let tree = parse("select k, sum(v) from a, b where a.k = b.k group by k").unwrap();
        let d = decompose(&tree).unwrap();
        assert_eq!(d.join.attrs, vec!["k"]);
        let (groups, aggs) = d.residual.aggregate.expect("aggregate residual");
        assert_eq!(groups, vec!["k"]);
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn scans_lists_base_relations() {
        let tree = parse("select * from a natural join b").unwrap();
        assert_eq!(tree.scans(), vec!["a", "b"]);
    }
}
