//! Tuples (rows).

use std::fmt;

use crate::schema::Schema;
use crate::value::Value;
use crate::RelError;

/// A row: an ordered list of values matching some [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Wraps values as a tuple.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at a column index.
    pub fn at(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// The value of the named attribute under `schema` — the paper's
    /// `t[A_join]` notation.
    pub fn get(&self, schema: &Schema, name: &str) -> Result<&Value, RelError> {
        Ok(&self.values[schema.index_of(name)?])
    }

    /// Checks the tuple against a schema (arity and types).
    pub fn conforms_to(&self, schema: &Schema) -> Result<(), RelError> {
        if self.values.len() != schema.arity() {
            return Err(RelError::SchemaMismatch(format!(
                "arity {} vs schema arity {}",
                self.values.len(),
                schema.arity()
            )));
        }
        for (v, a) in self.values.iter().zip(schema.attributes()) {
            if v.ty() != a.ty {
                return Err(RelError::SchemaMismatch(format!(
                    "attribute {} expects {} but value is {}",
                    a.name,
                    a.ty,
                    v.ty()
                )));
            }
        }
        Ok(())
    }

    /// A new tuple keeping only the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenation `self ++ other`, skipping `skip_right` indices of
    /// `other` (used by natural join to drop duplicated join columns).
    pub fn concat_skipping(&self, other: &Tuple, skip_right: &[usize]) -> Tuple {
        let mut values = self.values.clone();
        for (i, v) in other.values.iter().enumerate() {
            if !skip_right.contains(&i) {
                values.push(v.clone());
            }
        }
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Type;

    fn schema() -> Schema {
        Schema::new(&[("id", Type::Int), ("name", Type::Str)])
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![Value::Int(7), Value::from("ada")])
    }

    #[test]
    fn get_by_name() {
        assert_eq!(tuple().get(&schema(), "name").unwrap(), &Value::from("ada"));
        assert!(tuple().get(&schema(), "zzz").is_err());
    }

    #[test]
    fn conformance() {
        assert!(tuple().conforms_to(&schema()).is_ok());
        let wrong_type = Tuple::new(vec![Value::from("x"), Value::from("y")]);
        assert!(wrong_type.conforms_to(&schema()).is_err());
        let wrong_arity = Tuple::new(vec![Value::Int(1)]);
        assert!(wrong_arity.conforms_to(&schema()).is_err());
    }

    #[test]
    fn projection() {
        assert_eq!(tuple().project(&[1]), Tuple::new(vec![Value::from("ada")]));
        assert_eq!(tuple().project(&[1, 0]).at(1), &Value::Int(7));
    }

    #[test]
    fn concat_skipping_drops_columns() {
        let a = tuple();
        let b = Tuple::new(vec![Value::Int(7), Value::Int(100)]);
        let joined = a.concat_skipping(&b, &[0]);
        assert_eq!(joined.values().len(), 3);
        assert_eq!(joined.at(2), &Value::Int(100));
    }

    #[test]
    fn display() {
        assert_eq!(tuple().to_string(), "⟨7, 'ada'⟩");
    }
}
