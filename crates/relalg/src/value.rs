//! Typed attribute values.

use std::cmp::Ordering;
use std::fmt;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Str => write!(f, "str"),
            Type::Bool => write!(f, "bool"),
        }
    }
}

/// An attribute value.
///
/// Values of different types order by type tag first (`Int < Str < Bool`),
/// so heterogeneous collections (e.g. active domains in `BTreeSet`s) have a
/// total order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Str(_) => Type::Str,
            Value::Bool(_) => Type::Bool,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A canonical byte encoding used when hashing join values into
    /// cryptographic domains.  Distinct values encode distinctly (the tag
    /// byte separates types; strings are length-free here because the
    /// encoding is used atomically).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Value::Int(v) => {
                let mut out = Vec::with_capacity(9);
                out.push(0u8);
                out.extend_from_slice(&v.to_be_bytes());
                out
            }
            Value::Str(s) => {
                let mut out = Vec::with_capacity(1 + s.len());
                out.push(1u8);
                out.extend_from_slice(s.as_bytes());
                out
            }
            Value::Bool(b) => vec![2u8, *b as u8],
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Str(_) => 1,
            Value::Bool(_) => 2,
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Int(5).ty(), Type::Int);
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::from(false) < Value::from(true));
    }

    #[test]
    fn ordering_across_types_is_total() {
        assert!(Value::Int(i64::MAX) < Value::from(""));
        assert!(Value::from("zzz") < Value::from(false));
    }

    #[test]
    fn canonical_bytes_distinct() {
        let values = [
            Value::Int(1),
            Value::Int(-1),
            Value::from("1"),
            Value::from(""),
            Value::from(true),
            Value::from(false),
        ];
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                assert_eq!(
                    a.canonical_bytes() == b.canonical_bytes(),
                    i == j,
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::from(true).to_string(), "true");
    }
}
