//! `Algebra::eval` edge cases: empty relations, composite-key joins, and
//! pushdown-vs-no-pushdown result equivalence on generated catalogs.

use std::collections::{BTreeMap, HashMap};

use relalg::sql;
use relalg::{Relation, Schema, Type, Value};

fn rel(attrs: &[(&str, Type)], rows: Vec<Vec<Value>>) -> Relation {
    Relation::build(Schema::new(attrs), rows).expect("well-typed rows")
}

fn schemas_of(catalog: &HashMap<String, Relation>) -> BTreeMap<String, Schema> {
    catalog
        .iter()
        .map(|(k, v)| (k.clone(), v.schema().clone()))
        .collect()
}

#[test]
fn join_with_empty_side_is_empty() {
    let mut catalog = HashMap::new();
    catalog.insert(
        "l".to_string(),
        rel(
            &[("k", Type::Int), ("vl", Type::Int)],
            vec![vec![Value::Int(1), Value::Int(10)]],
        ),
    );
    catalog.insert(
        "r".to_string(),
        rel(&[("k", Type::Int), ("vr", Type::Int)], vec![]),
    );
    for q in [
        "select * from l natural join r",
        "select * from r natural join l",
        "select * from l join r on l.k = r.k",
    ] {
        let tree = sql::parse(q).unwrap();
        let out = tree.eval(&catalog).unwrap();
        assert_eq!(out.len(), 0, "query {q} over an empty side");
        // The joined schema is still well-formed.
        assert_eq!(out.schema().arity(), 3);
    }
}

#[test]
fn both_sides_empty_and_filters_over_empty() {
    let mut catalog = HashMap::new();
    catalog.insert(
        "l".to_string(),
        rel(&[("k", Type::Int), ("vl", Type::Int)], vec![]),
    );
    catalog.insert(
        "r".to_string(),
        rel(&[("k", Type::Int), ("vr", Type::Int)], vec![]),
    );
    let tree = sql::parse("select vl from l natural join r where vr < 3").unwrap();
    let out = tree.eval(&catalog).unwrap();
    assert_eq!(out.len(), 0);
    assert_eq!(out.schema().attr_names(), vec!["vl"]);
}

#[test]
fn aggregate_over_empty_join_has_no_groups() {
    let mut catalog = HashMap::new();
    catalog.insert(
        "l".to_string(),
        rel(&[("k", Type::Int), ("vl", Type::Int)], vec![]),
    );
    catalog.insert(
        "r".to_string(),
        rel(&[("k", Type::Int), ("vr", Type::Int)], vec![]),
    );
    let tree = sql::parse("select k, sum(vr) from l natural join r group by k").unwrap();
    let out = tree.eval(&catalog).unwrap();
    assert_eq!(out.len(), 0);
}

#[test]
fn composite_key_join_matches_on_all_attributes() {
    let mut catalog = HashMap::new();
    catalog.insert(
        "l".to_string(),
        rel(
            &[("a", Type::Int), ("b", Type::Int), ("vl", Type::Int)],
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(2), Value::Int(20)],
                vec![Value::Int(2), Value::Int(1), Value::Int(30)],
            ],
        ),
    );
    catalog.insert(
        "r".to_string(),
        rel(
            &[("a", Type::Int), ("b", Type::Int), ("vr", Type::Int)],
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Int(100)],
                vec![Value::Int(2), Value::Int(2), Value::Int(200)],
            ],
        ),
    );
    // Explicit two-attribute ON and NATURAL JOIN must agree: only the
    // (1,1) pair matches on both key parts.
    let on = sql::parse("select * from l join r on l.a = r.a and l.b = r.b").unwrap();
    let natural = sql::parse("select * from l natural join r").unwrap();
    let on_out = on.eval(&catalog).unwrap();
    let nat_out = natural.eval(&catalog).unwrap();
    assert_eq!(on_out.len(), 1);
    assert_eq!(on_out.tuples(), nat_out.tuples());
    assert_eq!(on_out.schema().attr_names(), vec!["a", "b", "vl", "vr"]);
    // A partial-key join would leave `b` colliding across the two sides;
    // any reference to it is rejected as ambiguous by the query graph.
    let partial = sql::parse("select * from l join r on l.a = r.a where b < 5").unwrap();
    assert!(matches!(
        sql::query_graph(&partial, &schemas_of(&catalog)),
        Err(relalg::RelError::AmbiguousColumn(_))
    ));
}

#[test]
fn composite_key_join_on_empty_intersection() {
    let mut catalog = HashMap::new();
    catalog.insert(
        "l".to_string(),
        rel(
            &[("a", Type::Int), ("b", Type::Int)],
            vec![vec![Value::Int(1), Value::Int(2)]],
        ),
    );
    catalog.insert(
        "r".to_string(),
        rel(
            &[("a", Type::Int), ("b", Type::Int)],
            vec![vec![Value::Int(2), Value::Int(1)]],
        ),
    );
    let tree = sql::parse("select * from l natural join r").unwrap();
    assert_eq!(tree.eval(&catalog).unwrap().len(), 0);
}

/// Seeded chain catalog: t0(k0,v0), t1(k0,k1,v1), ..., each table sharing
/// key `k{i-1}` with its predecessor.  A small LCG keeps it deterministic
/// without pulling generator machinery into this crate (the full-featured
/// version lives in `secmed-testkit::federation`).
fn chain_catalog(seed: u64, tables: usize, rows: usize) -> HashMap<String, Relation> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % bound
    };
    let mut catalog = HashMap::new();
    for i in 0..tables {
        let mut attrs: Vec<(String, Type)> = Vec::new();
        if i > 0 {
            attrs.push((format!("k{}", i - 1), Type::Int));
        }
        if i + 1 < tables {
            attrs.push((format!("k{i}"), Type::Int));
        }
        attrs.push((format!("v{i}"), Type::Int));
        let refs: Vec<(&str, Type)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut body = Vec::new();
        for _ in 0..rows {
            // Key domains of width 12 give a controlled, non-trivial
            // match rate between adjacent tables.
            body.push(
                refs.iter()
                    .map(|(n, _)| {
                        if n.starts_with('k') {
                            Value::Int(next(12) as i64)
                        } else {
                            Value::Int(next(1000) as i64)
                        }
                    })
                    .collect(),
            );
        }
        catalog.insert(format!("t{i}"), rel(&refs, body).distinct());
    }
    catalog
}

#[test]
fn pushdown_equivalence_on_generated_catalogs() {
    for seed in [1u64, 7, 42] {
        let catalog = chain_catalog(seed, 4, 24);
        let schemas = schemas_of(&catalog);
        let q = "select * from t0 natural join t1 natural join t2 natural join t3 \
                 where v0 <= 900 and v3 < 700 and k1 < 9";
        let tree = sql::parse(q).unwrap();
        let pushed = sql::push_down(&tree, &schemas).unwrap();
        let plain = tree.eval(&catalog).unwrap();
        let opt = pushed.eval(&catalog).unwrap();
        assert_eq!(
            plain.sorted().tuples(),
            opt.sorted().tuples(),
            "pushdown changed the result for seed {seed}"
        );
    }
}
