//! Property-based tests for the relational-algebra engine: algebraic laws
//! of the operators and total codec roundtrips.

use proptest::prelude::*;
use relalg::{
    decode_tuple, decode_tuple_set, encode_tuple, encode_tuple_set, Predicate, Relation, Schema,
    Tuple, Type, Value,
};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 _äöü€]{0,24}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..6).prop_map(Tuple::new)
}

/// Rows for a fixed (k: Int, v: Int) schema.
fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..20i64, any::<i64>()), 0..max)
}

fn relation(rows: &[(i64, i64)], names: (&str, &str)) -> Relation {
    let mut rel = Relation::empty(Schema::new(&[(names.0, Type::Int), (names.1, Type::Int)]));
    for &(k, v) in rows {
        rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(v)]))
            .unwrap();
    }
    rel
}

proptest! {
    #[test]
    fn tuple_codec_total_roundtrip(t in arb_tuple()) {
        prop_assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    }

    #[test]
    fn tuple_set_codec_total_roundtrip(ts in prop::collection::vec(arb_tuple(), 0..8)) {
        prop_assert_eq!(decode_tuple_set(&encode_tuple_set(&ts)).unwrap(), ts);
    }

    #[test]
    fn codec_is_injective(a in arb_tuple(), b in arb_tuple()) {
        prop_assert_eq!(encode_tuple(&a) == encode_tuple(&b), a == b);
    }

    #[test]
    fn decode_rejects_arbitrary_garbage_or_roundtrips(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Decoding must never panic; if it succeeds, re-encoding gives the
        // same bytes (canonical form).
        if let Ok(t) = decode_tuple(&bytes) {
            prop_assert_eq!(encode_tuple(&t), bytes);
        }
    }

    #[test]
    fn join_size_matches_key_multiplicity(l in arb_rows(15), r in arb_rows(15)) {
        let left = relation(&l, ("k", "a"));
        let right = relation(&r, ("k", "b"));
        let joined = left.natural_join(&right).unwrap();
        let expected: usize = (0..20i64)
            .map(|k| {
                l.iter().filter(|(lk, _)| *lk == k).count()
                    * r.iter().filter(|(rk, _)| *rk == k).count()
            })
            .sum();
        prop_assert_eq!(joined.len(), expected);
    }

    #[test]
    fn join_is_commutative_in_size(l in arb_rows(12), r in arb_rows(12)) {
        let left = relation(&l, ("k", "a"));
        let right = relation(&r, ("k", "b"));
        prop_assert_eq!(
            left.natural_join(&right).unwrap().len(),
            right.natural_join(&left).unwrap().len()
        );
    }

    #[test]
    fn select_fusion(rows in arb_rows(20), k1 in 0..20i64, v1 in any::<i64>()) {
        let rel = relation(&rows, ("k", "v"));
        let p = Predicate::eq_lit("k", k1);
        let q = Predicate::Lt(relalg::Operand::col("v"), relalg::Operand::lit(v1));
        let sequential = rel.select(&p).unwrap().select(&q).unwrap();
        let fused = rel.select(&p.clone().and(q.clone())).unwrap();
        prop_assert_eq!(sequential, fused);
    }

    #[test]
    fn select_never_grows(rows in arb_rows(20), k in 0..20i64) {
        let rel = relation(&rows, ("k", "v"));
        let selected = rel.select(&Predicate::eq_lit("k", k)).unwrap();
        prop_assert!(selected.len() <= rel.len());
    }

    #[test]
    fn project_preserves_cardinality(rows in arb_rows(20)) {
        let rel = relation(&rows, ("k", "v"));
        prop_assert_eq!(rel.project(&["v"]).unwrap().len(), rel.len());
        prop_assert_eq!(rel.project(&["v", "k"]).unwrap().len(), rel.len());
    }

    #[test]
    fn distinct_is_idempotent(rows in arb_rows(20)) {
        let rel = relation(&rows, ("k", "v"));
        let once = rel.distinct();
        prop_assert_eq!(once.distinct(), once);
    }

    #[test]
    fn union_cardinality_is_additive(l in arb_rows(10), r in arb_rows(10)) {
        let a = relation(&l, ("k", "v"));
        let b = relation(&r, ("k", "v"));
        prop_assert_eq!(a.union(&b).unwrap().len(), a.len() + b.len());
    }

    #[test]
    fn active_domain_bounds(rows in arb_rows(20)) {
        let rel = relation(&rows, ("k", "v"));
        let dom = rel.active_domain("k").unwrap();
        prop_assert!(dom.len() <= rel.len());
        for t in rel.tuples() {
            prop_assert!(dom.contains(t.at(0)));
        }
    }

    #[test]
    fn tuples_with_partition_the_relation(rows in arb_rows(20)) {
        let rel = relation(&rows, ("k", "v"));
        let total: usize = rel
            .active_domain("k")
            .unwrap()
            .iter()
            .map(|v| rel.tuples_with("k", v).unwrap().len())
            .sum();
        prop_assert_eq!(total, rel.len());
    }

    #[test]
    fn sql_roundtrip_filters_like_api(rows in arb_rows(20), k in 0..20i64) {
        use std::collections::HashMap;
        let rel = relation(&rows, ("k", "v"));
        let mut catalog = HashMap::new();
        catalog.insert("t".to_string(), rel.clone());
        let tree = relalg::sql::parse(&format!("select * from t where k = {k}")).unwrap();
        let via_sql = tree.eval(&catalog).unwrap();
        let via_api = rel.select(&Predicate::eq_lit("k", k)).unwrap();
        prop_assert_eq!(via_sql, via_api);
    }
}
