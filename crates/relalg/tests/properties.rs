//! Property-based tests for the relational-algebra engine: algebraic laws
//! of the operators and total codec roundtrips.

use relalg::{
    decode_tuple, decode_tuple_set, encode_tuple, encode_tuple_set, Predicate, Relation, Schema,
    Tuple, Type, Value,
};
use secmed_testkit::{cases, Gen, DEFAULT_CASES};

/// The string alphabet the previous framework drew from
/// (`[a-zA-Z0-9 _äöü€]`), including multi-byte characters to exercise the
/// codec's UTF-8 handling.
fn alphabet() -> Vec<char> {
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _äöü€"
        .chars()
        .collect()
}

fn arb_value(g: &mut Gen) -> Value {
    match g.usize_in(0, 2) {
        0 => Value::Int(g.i64()),
        1 => Value::Str(g.string_from(&alphabet(), 0, 24)),
        _ => Value::Bool(g.bool()),
    }
}

fn arb_tuple(g: &mut Gen) -> Tuple {
    let n = g.usize_in(0, 5);
    Tuple::new(g.vec_of(n, arb_value))
}

/// Rows for a fixed (k: Int, v: Int) schema.
fn arb_rows(g: &mut Gen, max: usize) -> Vec<(i64, i64)> {
    let n = g.usize_in(0, max.saturating_sub(1));
    g.vec_of(n, |g| (g.i64_in(0, 19), g.i64()))
}

fn relation(rows: &[(i64, i64)], names: (&str, &str)) -> Relation {
    let mut rel = Relation::empty(Schema::new(&[(names.0, Type::Int), (names.1, Type::Int)]));
    for &(k, v) in rows {
        rel.insert(Tuple::new(vec![Value::Int(k), Value::Int(v)]))
            .unwrap();
    }
    rel
}

#[test]
fn tuple_codec_total_roundtrip() {
    cases(DEFAULT_CASES, "tuple_codec_total_roundtrip", |g| {
        let t = arb_tuple(g);
        assert_eq!(decode_tuple(&encode_tuple(&t)).unwrap(), t);
    });
}

#[test]
fn tuple_set_codec_total_roundtrip() {
    cases(DEFAULT_CASES, "tuple_set_codec_total_roundtrip", |g| {
        let n = g.usize_in(0, 7);
        let ts = g.vec_of(n, arb_tuple);
        assert_eq!(decode_tuple_set(&encode_tuple_set(&ts)).unwrap(), ts);
    });
}

#[test]
fn codec_is_injective() {
    cases(DEFAULT_CASES, "codec_is_injective", |g| {
        let a = arb_tuple(g);
        let b = arb_tuple(g);
        assert_eq!(encode_tuple(&a) == encode_tuple(&b), a == b);
    });
}

#[test]
fn decode_rejects_arbitrary_garbage_or_roundtrips() {
    cases(
        DEFAULT_CASES,
        "decode_rejects_arbitrary_garbage_or_roundtrips",
        |g| {
            let bytes = g.bytes_in(0, 63);
            // Decoding must never panic; if it succeeds, re-encoding gives
            // the same bytes (canonical form).
            if let Ok(t) = decode_tuple(&bytes) {
                assert_eq!(encode_tuple(&t), bytes);
            }
        },
    );
}

#[test]
fn join_size_matches_key_multiplicity() {
    cases(DEFAULT_CASES, "join_size_matches_key_multiplicity", |g| {
        let l = arb_rows(g, 15);
        let r = arb_rows(g, 15);
        let left = relation(&l, ("k", "a"));
        let right = relation(&r, ("k", "b"));
        let joined = left.natural_join(&right).unwrap();
        let expected: usize = (0..20i64)
            .map(|k| {
                l.iter().filter(|(lk, _)| *lk == k).count()
                    * r.iter().filter(|(rk, _)| *rk == k).count()
            })
            .sum();
        assert_eq!(joined.len(), expected);
    });
}

#[test]
fn join_is_commutative_in_size() {
    cases(DEFAULT_CASES, "join_is_commutative_in_size", |g| {
        let l = arb_rows(g, 12);
        let r = arb_rows(g, 12);
        let left = relation(&l, ("k", "a"));
        let right = relation(&r, ("k", "b"));
        assert_eq!(
            left.natural_join(&right).unwrap().len(),
            right.natural_join(&left).unwrap().len()
        );
    });
}

#[test]
fn select_fusion() {
    cases(DEFAULT_CASES, "select_fusion", |g| {
        let rows = arb_rows(g, 20);
        let k1 = g.i64_in(0, 19);
        let v1 = g.i64();
        let rel = relation(&rows, ("k", "v"));
        let p = Predicate::eq_lit("k", k1);
        let q = Predicate::Lt(relalg::Operand::col("v"), relalg::Operand::lit(v1));
        let sequential = rel.select(&p).unwrap().select(&q).unwrap();
        let fused = rel.select(&p.clone().and(q.clone())).unwrap();
        assert_eq!(sequential, fused);
    });
}

#[test]
fn select_never_grows() {
    cases(DEFAULT_CASES, "select_never_grows", |g| {
        let rows = arb_rows(g, 20);
        let k = g.i64_in(0, 19);
        let rel = relation(&rows, ("k", "v"));
        let selected = rel.select(&Predicate::eq_lit("k", k)).unwrap();
        assert!(selected.len() <= rel.len());
    });
}

#[test]
fn project_preserves_cardinality() {
    cases(DEFAULT_CASES, "project_preserves_cardinality", |g| {
        let rows = arb_rows(g, 20);
        let rel = relation(&rows, ("k", "v"));
        assert_eq!(rel.project(&["v"]).unwrap().len(), rel.len());
        assert_eq!(rel.project(&["v", "k"]).unwrap().len(), rel.len());
    });
}

#[test]
fn distinct_is_idempotent() {
    cases(DEFAULT_CASES, "distinct_is_idempotent", |g| {
        let rows = arb_rows(g, 20);
        let rel = relation(&rows, ("k", "v"));
        let once = rel.distinct();
        assert_eq!(once.distinct(), once);
    });
}

#[test]
fn union_cardinality_is_additive() {
    cases(DEFAULT_CASES, "union_cardinality_is_additive", |g| {
        let l = arb_rows(g, 10);
        let r = arb_rows(g, 10);
        let a = relation(&l, ("k", "v"));
        let b = relation(&r, ("k", "v"));
        assert_eq!(a.union(&b).unwrap().len(), a.len() + b.len());
    });
}

#[test]
fn active_domain_bounds() {
    cases(DEFAULT_CASES, "active_domain_bounds", |g| {
        let rows = arb_rows(g, 20);
        let rel = relation(&rows, ("k", "v"));
        let dom = rel.active_domain("k").unwrap();
        assert!(dom.len() <= rel.len());
        for t in rel.tuples() {
            assert!(dom.contains(t.at(0)));
        }
    });
}

#[test]
fn tuples_with_partition_the_relation() {
    cases(DEFAULT_CASES, "tuples_with_partition_the_relation", |g| {
        let rows = arb_rows(g, 20);
        let rel = relation(&rows, ("k", "v"));
        let total: usize = rel
            .active_domain("k")
            .unwrap()
            .iter()
            .map(|v| rel.tuples_with("k", v).unwrap().len())
            .sum();
        assert_eq!(total, rel.len());
    });
}

#[test]
fn sql_roundtrip_filters_like_api() {
    cases(DEFAULT_CASES, "sql_roundtrip_filters_like_api", |g| {
        use std::collections::HashMap;
        let rows = arb_rows(g, 20);
        let k = g.i64_in(0, 19);
        let rel = relation(&rows, ("k", "v"));
        let mut catalog = HashMap::new();
        catalog.insert("t".to_string(), rel.clone());
        let tree = relalg::sql::parse(&format!("select * from t where k = {k}")).unwrap();
        let via_sql = tree.eval(&catalog).unwrap();
        let via_api = rel.select(&Predicate::eq_lit("k", k)).unwrap();
        assert_eq!(via_sql, via_api);
    });
}
