#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `secmed-server` — the mediator as a persistent process.
//!
//! The paper's architecture (§2) is multi-party: client, mediator, and
//! autonomous sources exchange the Listing 2/3/4 messages over a real
//! network.  This crate hosts the mediation side of that conversation as
//! a long-lived TCP server: one accept loop, one relay thread per
//! connection (spawned through `secmed-pool`'s structured [`scope`]),
//! and a session table keyed by the session id every wire-v2 frame
//! carries in its header.
//!
//! # The relay contract
//!
//! A connection opens with a `Hello` (protocol version + the client's
//! `DeliveryPolicy`), is answered with a `HelloAck`, and then relays:
//! each framed blob the client sends is echoed back verbatim after the
//! server validates its *header* (magic, codec version, session id).
//! The echoed copy is the one the client-side fabric records and
//! decodes, so a faithful relay makes the socket run byte-identical to
//! an in-process run — the equivalence the loopback suite asserts.  Two
//! deliberate asymmetries:
//!
//! * blobs whose header does not parse are echoed *verbatim*: a
//!   chaos-damaged copy (flipped magic, truncated header) is legitimate
//!   modeled traffic, and the receiver's total decoder is the component
//!   responsible for rejecting it;
//! * blobs whose header parses but names a *different* session are a
//!   protocol violation, not line noise (the fault model never touches
//!   the session bytes): the server aborts the session.
//!
//! Frame *bodies* are never decoded here — the server learns exactly
//! what a wire observer learns (lengths, kinds, timing), keeping the
//! Table 1 leakage accounting intact and the primitive census clean.
//!
//! [`scope`]: secmed_pool::scope

use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use secmed_pool::Scope;
use secmed_wire::{stream, Frame, FrameHeader, SessionStatus, WireError, WIRE_VERSION};

/// How a session ended, as the server saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The client said `Goodbye`; the session ran to completion.
    Completed,
    /// The connection died or violated the protocol mid-session; the
    /// message says what happened.  The session-table entry is reclaimed
    /// either way.
    Aborted(String),
    /// The handshake was refused; the status says why.
    Rejected(SessionStatus),
}

/// One line of the server's ledger: what a single connection did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// The session id the client proposed in its `Hello` header.
    pub session: u64,
    /// Framed blobs relayed (handshake frames excluded).
    pub frames: u64,
    /// Payload bytes relayed, request direction only.
    pub bytes: u64,
    /// How the session ended.
    pub outcome: SessionOutcome,
}

impl SessionSummary {
    /// Whether the session completed cleanly.
    pub fn completed(&self) -> bool {
        self.outcome == SessionOutcome::Completed
    }
}

/// A bound-but-not-yet-serving mediation server.
///
/// [`Server::bind`] grabs a loopback port; [`Server::start`] (inside a
/// [`secmed_pool::scope`]) runs the accept loop and returns a
/// [`ServerHandle`] for shutdown.  After the scope joins, the
/// [`Server::summaries`] ledger holds every session the server saw.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active: Mutex<BTreeSet<u64>>,
    summaries: Mutex<Vec<SessionSummary>>,
}

/// Borrowed control surface for a running [`Server`].
pub struct ServerHandle<'a> {
    server: &'a Server,
}

impl ServerHandle<'_> {
    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// Asks the accept loop to stop.  In-flight sessions run to their
    /// natural end; the surrounding scope joins every thread.
    pub fn shutdown(self) {
        self.server.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection; it checks the
        // flag before serving what it accepted.
        let _ = TcpStream::connect(self.server.addr);
    }
}

/// Unpoisons a mutex: the protected data (a set and a ledger of plain
/// values) stays consistent even if a relay thread panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Server {
    /// Binds an ephemeral loopback port.
    pub fn bind() -> std::io::Result<Server> {
        Server::bind_to("127.0.0.1:0")
    }

    /// Binds the given address (e.g. `127.0.0.1:7788`).
    pub fn bind_to(addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            shutdown: AtomicBool::new(false),
            active: Mutex::new(BTreeSet::new()),
            summaries: Mutex::new(Vec::new()),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns the accept loop on `scope` and returns the control handle.
    /// Each accepted connection gets its own relay thread on the same
    /// scope, so dropping out of the scope joins everything.
    pub fn start<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
    ) -> ServerHandle<'env> {
        scope.spawn(move || self.accept_loop(scope));
        ServerHandle { server: self }
    }

    /// The ledger of every session served so far (clone of the current
    /// state; complete once the serving scope has joined).
    pub fn summaries(&self) -> Vec<SessionSummary> {
        lock(&self.summaries).clone()
    }

    /// Session-table entries currently held by live connections.  Zero
    /// once every client has disconnected — the leak check the session
    /// tests pin down.
    pub fn active_sessions(&self) -> usize {
        lock(&self.active).len()
    }

    fn accept_loop<'scope, 'env>(&'env self, scope: &'scope Scope<'scope, 'env>) {
        let mut consecutive_errors = 0u32;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    consecutive_errors = 0;
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    scope.spawn(move || {
                        if let Some(summary) = self.serve_connection(stream) {
                            lock(&self.summaries).push(summary);
                        }
                    });
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // Transient accept errors (EMFILE, aborted handshakes)
                    // are survivable; a persistent failure means the
                    // listener is gone and serving is over.
                    consecutive_errors += 1;
                    if consecutive_errors > 64 {
                        break;
                    }
                }
            }
        }
    }

    /// Runs one connection to completion.  Returns `None` only for
    /// connections that never said anything (the shutdown wake-up, port
    /// probes); every real session leaves a summary.
    fn serve_connection(&self, mut stream: TcpStream) -> Option<SessionSummary> {
        let _ = stream.set_nodelay(true);
        let hello = match stream::read_blob(&mut stream) {
            Ok(Some(bytes)) => bytes,
            Ok(None) | Err(_) => return None,
        };
        let (session, frame) = match Frame::decode_with_session(&hello) {
            Ok(pair) => pair,
            Err(e) => {
                // Can't even parse the hello: nothing to acknowledge.
                return Some(SessionSummary {
                    session: 0,
                    frames: 0,
                    bytes: 0,
                    outcome: SessionOutcome::Aborted(format!("undecodable hello: {e}")),
                });
            }
        };
        let Frame::Hello { client_version, .. } = frame else {
            return Some(SessionSummary {
                session,
                frames: 0,
                bytes: 0,
                outcome: SessionOutcome::Aborted(format!("expected hello, got {}", frame.name())),
            });
        };
        if client_version != WIRE_VERSION {
            let status = SessionStatus::VersionMismatch(WIRE_VERSION);
            self.refuse(&mut stream, session, status);
            return Some(SessionSummary {
                session,
                frames: 0,
                bytes: 0,
                outcome: SessionOutcome::Rejected(status),
            });
        }
        if !lock(&self.active).insert(session) {
            let status = SessionStatus::DuplicateSession;
            self.refuse(&mut stream, session, status);
            return Some(SessionSummary {
                session,
                frames: 0,
                bytes: 0,
                outcome: SessionOutcome::Rejected(status),
            });
        }
        // From here on the table entry is owned by this connection and
        // must be reclaimed on every exit path.
        let ack = Frame::HelloAck {
            status: SessionStatus::Accepted,
        };
        let mut summary = SessionSummary {
            session,
            frames: 0,
            bytes: 0,
            outcome: SessionOutcome::Completed,
        };
        summary.outcome = match stream::write_blob(&mut stream, &ack.encode_with_session(session)) {
            Err(e) => SessionOutcome::Aborted(format!("hello ack failed: {e}")),
            Ok(()) => self.relay(&mut stream, session, &mut summary),
        };
        lock(&self.active).remove(&session);
        Some(summary)
    }

    fn refuse(&self, stream: &mut TcpStream, session: u64, status: SessionStatus) {
        let nack = Frame::HelloAck { status };
        let _ = stream::write_blob(stream, &nack.encode_with_session(session));
    }

    /// Echoes framed blobs until `Goodbye`, disconnect, or a session
    /// violation, counting relayed traffic into `summary`.
    fn relay(
        &self,
        stream: &mut TcpStream,
        session: u64,
        summary: &mut SessionSummary,
    ) -> SessionOutcome {
        loop {
            let blob = match stream::read_blob(stream) {
                Ok(Some(bytes)) => bytes,
                Ok(None) => {
                    return SessionOutcome::Aborted("client disconnected mid-session".into())
                }
                Err(e) => return SessionOutcome::Aborted(format!("read failed: {e}")),
            };
            match Frame::peek_header(&blob) {
                Ok(FrameHeader { session: named, .. }) if named != session => {
                    return SessionOutcome::Aborted(WireError::UnknownSession(named).to_string());
                }
                Ok(header) if header.kind == Frame::Goodbye.kind() => {
                    // Fabric metadata: consumed, never echoed (the client
                    // is already gone by the time an echo would land).
                    return SessionOutcome::Completed;
                }
                // A parseable in-session frame or a chaos-damaged blob:
                // both are modeled traffic, echoed verbatim for the
                // client-side recorder to judge.
                Ok(_) | Err(_) => {
                    summary.frames += 1;
                    summary.bytes += blob.len() as u64;
                    if let Err(e) = stream::write_blob(stream, &blob) {
                        return SessionOutcome::Aborted(format!("echo failed: {e}"));
                    }
                }
            }
        }
    }
}
