#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `secmed-server` — the mediator as a persistent process.
//!
//! The paper's architecture (§2) is multi-party: client, mediator, and
//! autonomous sources exchange the Listing 2/3/4 messages over a real
//! network.  This crate hosts the mediation side of that conversation as
//! a long-lived TCP server: one accept loop, one relay thread per
//! connection (spawned through `secmed-pool`'s structured [`scope`]),
//! and a session table keyed by the session id every wire-v2 frame
//! carries in its header.
//!
//! # The relay contract
//!
//! A connection opens with a `Hello` (protocol version + the client's
//! `DeliveryPolicy`), is answered with a `HelloAck`, and then relays:
//! each framed blob the client sends is echoed back verbatim after the
//! server validates its *header* (magic, codec version, session id).
//! The echoed copy is the one the client-side fabric records and
//! decodes, so a faithful relay makes the socket run byte-identical to
//! an in-process run — the equivalence the loopback suite asserts.  Two
//! deliberate asymmetries:
//!
//! * blobs whose header does not parse are echoed *verbatim*: a
//!   chaos-damaged copy (flipped magic, truncated header) is legitimate
//!   modeled traffic, and the receiver's total decoder is the component
//!   responsible for rejecting it;
//! * blobs whose header parses but names a *different* session are a
//!   protocol violation, not line noise (the fault model never touches
//!   the session bytes): the server aborts the session.
//!
//! Frame *bodies* are never decoded here — the server learns exactly
//! what a wire observer learns (lengths, kinds, timing), keeping the
//! Table 1 leakage accounting intact and the primitive census clean.
//!
//! # The resilience layer
//!
//! Configured through [`ServerConfig`]:
//!
//! * **Reconnect-and-resume.**  With `replay_window > 0`, a connection
//!   that dies mid-session is *parked* instead of aborted: the server
//!   keeps the session's request sequence counter plus the last
//!   `replay_window` echoes.  A client that redials and opens with
//!   `Resume { next_seq }` adopts the parked state; the server answers
//!   `ResumeAck`, immediately replays every echo the client is missing,
//!   and the relay continues.  Sequence numbers are implicit — both ends
//!   count relayed blobs — so the frame bytes on the wire are unchanged
//!   and a resumed run stays byte-identical to an uninterrupted one.
//! * **Deadlines.**  Every relay stream carries a read timeout of
//!   `tick_ns`; a session idle past `idle_deadline_ns` is reaped into a
//!   typed `Aborted("idle deadline exceeded")` instead of pinning its
//!   thread.  Parked sessions expire on the same deadline.
//! * **Admission control.**  With `max_sessions > 0`, a `Hello` that
//!   would push the session table over the limit is refused with a
//!   [`SessionStatus::ServerBusy`] NACK — a typed, retryable signal.
//! * **Graceful drain.**  [`ServerHandle::shutdown`] stops admitting
//!   (late Hellos get the same `ServerBusy` NACK, never a silent drop),
//!   lets in-flight sessions finish, and gives up after
//!   `drain_deadline_ns`, aborting the stragglers.
//! * **Server-side chaos.**  A [`ServerFaultPlan`] injects connection
//!   kills, stalled echoes, partial writes, and a simulated restart
//!   (session state loss), every decision drawn from a DRBG keyed by
//!   `(seed, session, seq, incarnation)` so schedules are reproducible
//!   and thread-count-independent.
//!
//! All wall-clock use goes through the [`Clock`] in the config, so tests
//! drive deadlines with a manual clock and the determinism lint holds.
//!
//! [`scope`]: secmed_pool::scope

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use secmed_crypto::drbg::HmacDrbg;
use secmed_obs::metrics::{self, Class, Clock, MonotonicClock};
use secmed_pool::Scope;
use secmed_wire::stream::{BlobRead, BlobReader};
use secmed_wire::{
    stream, Frame, FrameHeader, ResumeStatus, SessionStatus, WireError, WIRE_VERSION,
};

/// Registry counter: sessions admitted past the gate.
const M_ADMITTED: &str = "server.sessions.admitted";
/// Registry counter: Hellos and Resumes refused (busy, duplicate,
/// version, unknown/expired session).
const M_REFUSED: &str = "server.sessions.refused";
/// Registry counter: sessions reaped past a deadline (live or parked).
const M_REAPED: &str = "server.sessions.reaped";
/// Registry counter: parked sessions successfully adopted by a resume.
const M_RESUMED: &str = "server.sessions.resumed";

/// How a session ended, as the server saw it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The client said `Goodbye`; the session ran to completion.
    Completed,
    /// The connection died or violated the protocol mid-session; the
    /// message says what happened.  The session-table entry is reclaimed
    /// either way.
    Aborted(String),
    /// The handshake was refused; the status says why.
    Rejected(SessionStatus),
    /// The connection died mid-session and the session was parked for a
    /// later `Resume`.  If the resume never comes, the reaper rewrites
    /// this line into `Aborted`.
    Suspended(String),
    /// A `Resume` opener was refused; the status says why.
    ResumeRejected(ResumeStatus),
}

/// One line of the server's ledger: what a single connection did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSummary {
    /// The session id the client proposed in its `Hello` header.
    pub session: u64,
    /// Framed blobs relayed (handshake frames excluded).
    pub frames: u64,
    /// Payload bytes relayed, request direction only.
    pub bytes: u64,
    /// How the session ended.
    pub outcome: SessionOutcome,
}

impl SessionSummary {
    /// Whether the session completed cleanly.
    pub fn completed(&self) -> bool {
        self.outcome == SessionOutcome::Completed
    }
}

/// Server-side fault injection, the mirror of the client fabric's
/// `FaultPlan`.  Every decision is drawn from a DRBG keyed by
/// `(seed, session, seq, incarnation)`, so the schedule is a pure
/// function of the plan and the (deterministic) traffic — identical at
/// every thread count, and different on every resume incarnation so a
/// killed frame is not killed forever.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFaultPlan {
    /// Seed for the per-event DRBG draws.
    pub seed: u64,
    /// Per-mille chance a frame's connection is killed before the echo.
    pub kill_per_mille: u16,
    /// Per-mille chance an echo is stalled by `stall_ns` first.
    pub stall_per_mille: u16,
    /// How long a stalled echo sleeps (through the config clock).
    pub stall_ns: u64,
    /// Per-mille chance the echo is cut off mid-write and the
    /// connection killed (the frame *was* relayed; resume replays it).
    pub partial_write_per_mille: u16,
    /// Simulated restart: at this request sequence number the server
    /// forgets the session entirely — a later `Resume` is answered
    /// `UnknownSession`, exactly as after a real process restart.
    pub restart_at_frame: Option<u64>,
}

impl ServerFaultPlan {
    /// A plan that injects nothing (but still seeds the DRBG keying).
    pub fn none(seed: u64) -> Self {
        ServerFaultPlan {
            seed,
            ..ServerFaultPlan::default()
        }
    }

    /// A moderate all-fault mix for chaos sweeps: occasional kills,
    /// short stalls, and rare partial writes — everything a resume can
    /// recover from (no simulated restart).
    pub fn for_seed(seed: u64) -> Self {
        ServerFaultPlan {
            seed,
            kill_per_mille: 60,
            stall_per_mille: 40,
            stall_ns: 200_000,
            partial_write_per_mille: 30,
            restart_at_frame: None,
        }
    }

    /// The three per-mille rolls (kill, stall, partial) for one event.
    fn rolls(&self, session: u64, seq: u64, incarnation: u64) -> [u16; 3] {
        let label = format!(
            "server-chaos/{}/{}/{}/{}",
            self.seed, session, seq, incarnation
        );
        let mut drbg = HmacDrbg::from_label(&label);
        let mut out = [0u16; 3];
        for slot in &mut out {
            let mut bytes = [0u8; 8];
            drbg.fill(&mut bytes);
            *slot = (u64::from_be_bytes(bytes) % 1000) as u16;
        }
        out
    }
}

/// Knobs for the resilience layer.  The default reproduces the original
/// relay exactly: no admission limit, no deadlines, no resume, no chaos.
#[derive(Clone)]
pub struct ServerConfig {
    /// Admission limit on session-table entries (live + parked);
    /// 0 = unlimited.  Over-limit Hellos get a `ServerBusy` NACK.
    pub max_sessions: usize,
    /// Reap a session (live or parked) idle this long; 0 = never.
    pub idle_deadline_ns: u64,
    /// Echoes retained per parked session for resume replay;
    /// 0 = resume disabled (disconnects abort, as before).
    pub replay_window: usize,
    /// How long `shutdown()` waits for in-flight sessions; 0 = forever.
    pub drain_deadline_ns: u64,
    /// Read-timeout granularity for relay streams and drain polling.
    pub tick_ns: u64,
    /// Server-side fault injection; `None` = faithful relay.
    pub chaos: Option<ServerFaultPlan>,
    /// The wall clock behind every deadline and sleep.
    pub clock: Arc<dyn Clock>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 0,
            idle_deadline_ns: 0,
            replay_window: 0,
            drain_deadline_ns: 2_000_000_000,
            tick_ns: 5_000_000,
            chaos: None,
            clock: Arc::new(MonotonicClock),
        }
    }
}

/// A parked session: the relay state a dead connection left behind,
/// waiting for a `Resume`.
struct Parked {
    /// The server's next expected request sequence number.
    next_seq: u64,
    /// The most recent echoes, oldest first: `(seq, blob)`.
    replay: VecDeque<(u64, Vec<u8>)>,
    /// When the session was parked (config clock), for the reaper.
    parked_at_ns: u64,
    /// Index of this session's `Suspended` ledger line, rewritten to
    /// `Aborted` if the session is reaped instead of resumed.
    ledger_idx: usize,
    /// Resume count so far; keys the chaos DRBG so a replayed sequence
    /// number draws fresh faults.
    incarnation: u64,
}

/// A session-table entry.
enum Entry {
    /// Attached to a live connection.
    Live,
    /// Awaiting resume.
    Parked(Parked),
}

/// Per-connection relay state.
struct RelayState {
    next_seq: u64,
    replay: VecDeque<(u64, Vec<u8>)>,
    incarnation: u64,
}

impl RelayState {
    fn fresh() -> Self {
        RelayState {
            next_seq: 0,
            replay: VecDeque::new(),
            incarnation: 0,
        }
    }

    /// Records an echo in the replay window (no-op when disabled).
    fn remember(&mut self, seq: u64, blob: Vec<u8>, window: usize) {
        if window == 0 {
            return;
        }
        self.replay.push_back((seq, blob));
        while self.replay.len() > window {
            self.replay.pop_front();
        }
    }
}

/// How a relay ended, deciding what happens to the table entry.
enum RelayEnd {
    /// Terminal: remove the entry, record the outcome.
    Done(SessionOutcome),
    /// Connection died but the session survives: park for resume.
    Park(String),
}

/// A bound-but-not-yet-serving mediation server.
///
/// [`Server::bind`] grabs a loopback port; [`Server::start`] (inside a
/// [`secmed_pool::scope`]) runs the accept loop and returns a
/// [`ServerHandle`] for shutdown.  After the scope joins, the
/// [`Server::summaries`] ledger holds every session the server saw.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    draining: AtomicBool,
    halt: AtomicBool,
    sessions: Mutex<BTreeMap<u64, Entry>>,
    summaries: Mutex<Vec<SessionSummary>>,
}

/// Borrowed control surface for a running [`Server`].
pub struct ServerHandle<'a> {
    server: &'a Server,
}

impl ServerHandle<'_> {
    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr
    }

    /// Starts a graceful drain: stop admitting (late Hellos are refused
    /// with `ServerBusy`, never silently dropped), let in-flight
    /// sessions finish, give up after the config's drain deadline.  The
    /// surrounding scope joins every thread.
    pub fn shutdown(self) {
        self.server.draining.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection so it notices
        // the flag and switches to drain mode.
        let _ = TcpStream::connect(self.server.addr);
    }
}

/// Unpoisons a mutex: the protected data (a map and a ledger of plain
/// values) stays consistent even if a relay thread panicked mid-update.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Server {
    /// Binds an ephemeral loopback port with the default config.
    pub fn bind() -> std::io::Result<Server> {
        Server::bind_to("127.0.0.1:0")
    }

    /// Binds the given address (e.g. `127.0.0.1:7788`).
    pub fn bind_to(addr: &str) -> std::io::Result<Server> {
        Server::bind_to_with(addr, ServerConfig::default())
    }

    /// Binds an ephemeral loopback port with an explicit config.
    pub fn bind_with(config: ServerConfig) -> std::io::Result<Server> {
        Server::bind_to_with("127.0.0.1:0", config)
    }

    /// Binds the given address with an explicit config.
    pub fn bind_to_with(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            config,
            draining: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            sessions: Mutex::new(BTreeMap::new()),
            summaries: Mutex::new(Vec::new()),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Spawns the accept loop on `scope` and returns the control handle.
    /// Each accepted connection gets its own relay thread on the same
    /// scope, so dropping out of the scope joins everything.
    pub fn start<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
    ) -> ServerHandle<'env> {
        scope.spawn(move || self.accept_loop(scope));
        ServerHandle { server: self }
    }

    /// The ledger of every session served so far (clone of the current
    /// state; complete once the serving scope has joined).
    pub fn summaries(&self) -> Vec<SessionSummary> {
        lock(&self.summaries).clone()
    }

    /// Session-table entries currently held — live connections plus
    /// parked sessions awaiting resume.  Zero once every client has
    /// disconnected and nothing is parked — the leak check the session
    /// tests pin down.
    pub fn active_sessions(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// Table entries parked for resume (a subset of
    /// [`Server::active_sessions`]).
    pub fn parked_sessions(&self) -> usize {
        lock(&self.sessions)
            .values()
            .filter(|e| matches!(e, Entry::Parked(_)))
            .count()
    }

    fn live_count(&self) -> usize {
        lock(&self.sessions)
            .values()
            .filter(|e| matches!(e, Entry::Live))
            .count()
    }

    /// Reaps parked sessions idle past the deadline, rewriting their
    /// `Suspended` ledger lines into `Aborted("idle deadline exceeded")`.
    /// Returns how many were reaped.  Called from the accept loop, the
    /// resume path, and the drain loop; harnesses may call it directly.
    pub fn reap_idle(&self) -> usize {
        let idle = self.config.idle_deadline_ns;
        if idle == 0 {
            return 0;
        }
        let now = self.config.clock.now_ns();
        self.reap_parked_where(
            |p| now.saturating_sub(p.parked_at_ns) >= idle,
            "idle deadline exceeded",
        )
    }

    /// Removes parked entries matching `cond`, rewriting their ledger
    /// lines to `Aborted(reason)`.
    fn reap_parked_where(&self, cond: impl Fn(&Parked) -> bool, reason: &str) -> usize {
        let mut lines = Vec::new();
        {
            let mut tbl = lock(&self.sessions);
            let expired: Vec<u64> = tbl
                .iter()
                .filter_map(|(s, e)| match e {
                    Entry::Parked(p) if cond(p) => Some(*s),
                    _ => None,
                })
                .collect();
            for s in expired {
                if let Some(Entry::Parked(p)) = tbl.remove(&s) {
                    lines.push(p.ledger_idx);
                }
            }
        }
        let n = lines.len();
        if n > 0 {
            let mut led = lock(&self.summaries);
            for idx in lines {
                if let Some(line) = led.get_mut(idx) {
                    line.outcome = SessionOutcome::Aborted(reason.to_string());
                }
            }
            drop(led);
            metrics::incr(Class::Deterministic, M_REAPED, n as u64);
        }
        n
    }

    fn accept_loop<'scope, 'env>(&'env self, scope: &'scope Scope<'scope, 'env>) {
        let mut consecutive_errors = 0u32;
        while !self.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    consecutive_errors = 0;
                    // Served even if the draining flag flipped between the
                    // accept and this spawn: serve_connection answers the
                    // Hello with a ServerBusy NACK and writes a ledger
                    // line — a late client is refused, never dropped.
                    scope.spawn(move || self.serve_connection(stream));
                    self.reap_idle();
                }
                Err(_) => {
                    if self.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    // Transient accept errors (EMFILE, aborted handshakes)
                    // are survivable; back off so the loop cannot hot-spin,
                    // and give up if the listener is persistently gone.
                    consecutive_errors += 1;
                    if consecutive_errors > 64 {
                        return;
                    }
                    let shift = consecutive_errors.min(5);
                    let backoff = (self.config.tick_ns.max(1) << shift).min(250_000_000);
                    self.config.clock.sleep_ns(backoff);
                }
            }
        }
        self.drain(scope);
    }

    /// Drain mode: keep refusing stragglers, wait for live sessions to
    /// finish (bounded by the drain deadline), then abort the rest and
    /// reap everything parked.
    fn drain<'scope, 'env>(&'env self, scope: &'scope Scope<'scope, 'env>) {
        let start = self.config.clock.now_ns();
        let _ = self.listener.set_nonblocking(true);
        loop {
            while let Ok((stream, _)) = self.listener.accept() {
                scope.spawn(move || self.serve_connection(stream));
            }
            self.reap_idle();
            if self.live_count() == 0 {
                break;
            }
            let deadline = self.config.drain_deadline_ns;
            if deadline > 0 && self.config.clock.now_ns().saturating_sub(start) >= deadline {
                break;
            }
            self.config.clock.sleep_ns(self.config.tick_ns.max(1));
        }
        // Out of time (or out of sessions): relay loops still running
        // abort at their next tick, and parked sessions can never be
        // resumed now — reap them all.
        self.halt.store(true, Ordering::SeqCst);
        self.reap_parked_where(|_| true, "server drained");
    }

    /// Runs one connection to completion.  Connections that never say
    /// anything (the shutdown wake-up, port probes) leave no trace;
    /// every connection that speaks leaves exactly one ledger line.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_nanos(self.config.tick_ns.max(1))));
        let opened_at = self.config.clock.now_ns();
        let mut reader = BlobReader::new();
        let opener = loop {
            match reader.step(&mut stream) {
                Ok(BlobRead::Blob(bytes)) => break bytes,
                Ok(BlobRead::Eof) | Err(_) => return,
                Ok(BlobRead::Timeout) => {
                    if self.halt.load(Ordering::SeqCst) {
                        return;
                    }
                    let idle = self.config.idle_deadline_ns;
                    if idle > 0 && self.config.clock.now_ns().saturating_sub(opened_at) >= idle {
                        return;
                    }
                }
            }
        };
        let (session, frame) = match Frame::decode_with_session(&opener) {
            Ok(pair) => pair,
            Err(e) => {
                // Can't even parse the opener: nothing to acknowledge.
                self.push_line(
                    0,
                    SessionOutcome::Aborted(format!("undecodable hello: {e}")),
                );
                return;
            }
        };
        match frame {
            Frame::Hello { client_version, .. } => {
                self.open_session(stream, session, client_version);
            }
            Frame::Resume { next_seq } => {
                self.resume_session(stream, session, next_seq);
            }
            other => {
                self.push_line(
                    session,
                    SessionOutcome::Aborted(format!("expected hello, got {}", other.name())),
                );
            }
        }
    }

    /// Appends a zero-traffic ledger line.
    fn push_line(&self, session: u64, outcome: SessionOutcome) {
        lock(&self.summaries).push(SessionSummary {
            session,
            frames: 0,
            bytes: 0,
            outcome,
        });
    }

    /// The `Hello` path: admission gate, ack, relay.
    fn open_session(&self, mut stream: TcpStream, session: u64, client_version: u8) {
        if client_version != WIRE_VERSION {
            let status = SessionStatus::VersionMismatch(WIRE_VERSION);
            self.refuse(&mut stream, session, status);
            metrics::incr(Class::Deterministic, M_REFUSED, 1);
            self.push_line(session, SessionOutcome::Rejected(status));
            return;
        }
        // Admission is atomic with insertion: the capacity check and the
        // duplicate check see the same table state.
        let refused = {
            let mut tbl = lock(&self.sessions);
            if tbl.contains_key(&session) {
                Some(SessionStatus::DuplicateSession)
            } else if self.draining.load(Ordering::SeqCst)
                || (self.config.max_sessions > 0 && tbl.len() >= self.config.max_sessions)
            {
                Some(SessionStatus::ServerBusy)
            } else {
                tbl.insert(session, Entry::Live);
                None
            }
        };
        if let Some(status) = refused {
            self.refuse(&mut stream, session, status);
            metrics::incr(Class::Deterministic, M_REFUSED, 1);
            self.push_line(session, SessionOutcome::Rejected(status));
            return;
        }
        metrics::incr(Class::Deterministic, M_ADMITTED, 1);
        // From here on the table entry is owned by this connection and
        // must be reclaimed (or parked) on every exit path.
        let ack = Frame::HelloAck {
            status: SessionStatus::Accepted,
        };
        let mut summary = SessionSummary {
            session,
            frames: 0,
            bytes: 0,
            outcome: SessionOutcome::Completed,
        };
        let mut state = RelayState::fresh();
        let end = match stream::write_blob(&mut stream, &ack.encode_with_session(session)) {
            Err(e) => RelayEnd::Done(SessionOutcome::Aborted(format!("hello ack failed: {e}"))),
            Ok(()) => self.relay(&mut stream, session, &mut summary, &mut state),
        };
        self.conclude(summary, state, end);
    }

    /// The `Resume` path: verdict, ack, missing-echo replay, relay.
    fn resume_session(&self, mut stream: TcpStream, session: u64, client_next: u64) {
        self.reap_idle();
        let verdict: Result<Parked, ResumeStatus> = {
            let mut tbl = lock(&self.sessions);
            let check = if self.halt.load(Ordering::SeqCst) {
                // Past the drain deadline nothing can be adopted; by the
                // time the client retries, the reaper will have made this
                // literally true.
                Err(ResumeStatus::UnknownSession)
            } else {
                match tbl.get(&session) {
                    None => Err(ResumeStatus::UnknownSession),
                    Some(Entry::Live) => Err(ResumeStatus::SessionLive),
                    Some(Entry::Parked(p)) => {
                        let oldest = p.next_seq.saturating_sub(p.replay.len() as u64);
                        if client_next > p.next_seq || client_next < oldest {
                            Err(ResumeStatus::ReplayGone)
                        } else {
                            Ok(())
                        }
                    }
                }
            };
            match check {
                Err(status) => Err(status),
                Ok(()) => match tbl.insert(session, Entry::Live) {
                    Some(Entry::Parked(p)) => Ok(p),
                    other => {
                        // Unreachable (checked under the same lock), but
                        // stay total: restore and refuse.
                        if let Some(e) = other {
                            tbl.insert(session, e);
                        }
                        Err(ResumeStatus::UnknownSession)
                    }
                },
            }
        };
        let parked = match verdict {
            Err(status) => {
                let nack = Frame::ResumeAck {
                    status,
                    server_next_seq: 0,
                };
                let _ = stream::write_blob(&mut stream, &nack.encode_with_session(session));
                metrics::incr(Class::Deterministic, M_REFUSED, 1);
                self.push_line(session, SessionOutcome::ResumeRejected(status));
                return;
            }
            Ok(p) => p,
        };
        let mut state = RelayState {
            next_seq: parked.next_seq,
            replay: parked.replay,
            incarnation: parked.incarnation + 1,
        };
        let mut summary = SessionSummary {
            session,
            frames: 0,
            bytes: 0,
            outcome: SessionOutcome::Completed,
        };
        let ack = Frame::ResumeAck {
            status: ResumeStatus::Resumed,
            server_next_seq: state.next_seq,
        };
        let end = match stream::write_blob(&mut stream, &ack.encode_with_session(session)) {
            Err(e) => RelayEnd::Park(format!("resume ack failed: {e}")),
            Ok(()) => {
                let mut replay_err = None;
                for (seq, blob) in state.replay.iter() {
                    if *seq >= client_next {
                        if let Err(e) = stream::write_blob(&mut stream, blob) {
                            replay_err = Some(e);
                            break;
                        }
                    }
                }
                match replay_err {
                    Some(e) => RelayEnd::Park(format!("resume replay failed: {e}")),
                    None => {
                        metrics::incr(Class::Deterministic, M_RESUMED, 1);
                        self.relay(&mut stream, session, &mut summary, &mut state)
                    }
                }
            }
        };
        self.conclude(summary, state, end);
    }

    /// Settles a finished connection: removes or parks the table entry
    /// and writes the connection's ledger line.
    fn conclude(&self, mut summary: SessionSummary, state: RelayState, end: RelayEnd) {
        let session = summary.session;
        let end = match end {
            // Past the drain deadline a park would leak (the reaper has
            // already swept): abort instead.
            RelayEnd::Park(reason) if self.halt.load(Ordering::SeqCst) => {
                RelayEnd::Done(SessionOutcome::Aborted(reason))
            }
            other => other,
        };
        match end {
            RelayEnd::Done(outcome) => {
                lock(&self.sessions).remove(&session);
                summary.outcome = outcome;
                lock(&self.summaries).push(summary);
            }
            RelayEnd::Park(reason) => {
                summary.outcome = SessionOutcome::Suspended(reason);
                let idx = {
                    let mut led = lock(&self.summaries);
                    led.push(summary);
                    led.len() - 1
                };
                let parked = Entry::Parked(Parked {
                    next_seq: state.next_seq,
                    replay: state.replay,
                    parked_at_ns: self.config.clock.now_ns(),
                    ledger_idx: idx,
                    incarnation: state.incarnation,
                });
                lock(&self.sessions).insert(session, parked);
            }
        }
    }

    fn refuse(&self, stream: &mut TcpStream, session: u64, status: SessionStatus) {
        let nack = Frame::HelloAck { status };
        let _ = stream::write_blob(stream, &nack.encode_with_session(session));
    }

    /// Parks when resume is enabled, aborts otherwise.
    fn park_or(&self, reason: String) -> RelayEnd {
        if self.config.replay_window > 0 {
            RelayEnd::Park(reason)
        } else {
            RelayEnd::Done(SessionOutcome::Aborted(reason))
        }
    }

    /// Echoes framed blobs until `Goodbye`, disconnect, or a session
    /// violation, counting relayed traffic into `summary`.
    fn relay(
        &self,
        stream: &mut TcpStream,
        session: u64,
        summary: &mut SessionSummary,
        state: &mut RelayState,
    ) -> RelayEnd {
        let window = self.config.replay_window;
        let mut last_activity = self.config.clock.now_ns();
        let mut reader = BlobReader::new();
        loop {
            if self.halt.load(Ordering::SeqCst) {
                return RelayEnd::Done(SessionOutcome::Aborted(
                    "server drained before session completed".into(),
                ));
            }
            let blob = match reader.step(stream) {
                Ok(BlobRead::Blob(bytes)) => bytes,
                Ok(BlobRead::Eof) => {
                    return self.park_or("client disconnected mid-session".into());
                }
                Ok(BlobRead::Timeout) => {
                    let idle = self.config.idle_deadline_ns;
                    if idle > 0 && self.config.clock.now_ns().saturating_sub(last_activity) >= idle
                    {
                        metrics::incr(Class::Deterministic, M_REAPED, 1);
                        return RelayEnd::Done(SessionOutcome::Aborted(
                            "idle deadline exceeded".into(),
                        ));
                    }
                    continue;
                }
                Err(e) => return self.park_or(format!("read failed: {e}")),
            };
            last_activity = self.config.clock.now_ns();
            match Frame::peek_header(&blob) {
                Ok(FrameHeader { session: named, .. }) if named != session => {
                    return RelayEnd::Done(SessionOutcome::Aborted(
                        WireError::UnknownSession(named).to_string(),
                    ));
                }
                Ok(header) if header.kind == Frame::Goodbye.kind() => {
                    // Fabric metadata: consumed, never echoed (the client
                    // is already gone by the time an echo would land).
                    return RelayEnd::Done(SessionOutcome::Completed);
                }
                // A parseable in-session frame or a chaos-damaged blob:
                // both are modeled traffic, echoed verbatim for the
                // client-side recorder to judge.
                Ok(_) | Err(_) => {
                    let seq = state.next_seq;
                    if let Some(plan) = &self.config.chaos {
                        if plan.restart_at_frame == Some(seq) {
                            // Simulated restart: all session state gone.
                            let _ = stream.shutdown(Shutdown::Both);
                            return RelayEnd::Done(SessionOutcome::Aborted(
                                "server restarted (session state lost)".into(),
                            ));
                        }
                        let [kill, stall, partial] = plan.rolls(session, seq, state.incarnation);
                        if plan.kill_per_mille > 0 && kill < plan.kill_per_mille {
                            let _ = stream.shutdown(Shutdown::Both);
                            return self.park_or("chaos: connection killed before echo".into());
                        }
                        if plan.stall_per_mille > 0 && stall < plan.stall_per_mille {
                            self.config.clock.sleep_ns(plan.stall_ns);
                        }
                        if plan.partial_write_per_mille > 0
                            && partial < plan.partial_write_per_mille
                        {
                            // The frame counts as relayed — the echo just
                            // never fully lands.  Resume replays it whole.
                            summary.frames += 1;
                            summary.bytes += blob.len() as u64;
                            let len = (blob.len() as u32).to_be_bytes();
                            let half = blob.get(..blob.len() / 2).unwrap_or(&[]);
                            let _ = stream.write_all(&len);
                            let _ = stream.write_all(half);
                            let _ = stream.flush();
                            let _ = stream.shutdown(Shutdown::Both);
                            state.remember(seq, blob, window);
                            state.next_seq += 1;
                            return self.park_or("chaos: partial echo write".into());
                        }
                    }
                    summary.frames += 1;
                    summary.bytes += blob.len() as u64;
                    let write = stream::write_blob(stream, &blob);
                    state.remember(seq, blob, window);
                    state.next_seq += 1;
                    if let Err(e) = write {
                        return self.park_or(format!("echo failed: {e}"));
                    }
                }
            }
        }
    }
}
