//! The `secmed-server` binary: a persistent mediation server on loopback.
//!
//! ```text
//! secmed-server [ADDR]        # default 127.0.0.1:7788
//! ```
//!
//! Listens until killed; every client connection gets its own relay
//! thread.  Pair with `secmed-client` (or the `soak` bench) on the same
//! machine.

use secmed_server::Server;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7788".to_string());
    let server = match Server::bind_to(&addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("secmed-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("secmed-server listening on {}", server.addr());
    println!("stop with Ctrl-C; sessions are independent, state is per-connection");
    secmed_pool::scope(|s| {
        // The handle is dropped without shutdown: serve until the process
        // is killed.
        let _handle = server.start(s);
    });
}
