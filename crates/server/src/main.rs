//! The `secmed-server` binary: a persistent mediation server on loopback.
//!
//! ```text
//! secmed-server [ADDR] [--max-sessions N] [--idle-deadline-ms N] [--replay-window N]
//! ```
//!
//! * `ADDR` — listen address, default `127.0.0.1:7788`.
//! * `--max-sessions N` — admission limit: Hellos beyond `N` live
//!   sessions are refused with a typed `ServerBusy` NACK.
//! * `--idle-deadline-ms N` — relay read deadline: a session silent for
//!   longer is reaped into a typed abort (and a parked session expires).
//! * `--replay-window N` — resume depth: how many recently echoed blobs
//!   are retained per session so a reconnecting client can be replayed
//!   the frames it missed (`0` disables resume).
//!
//! Listens until killed; every client connection gets its own relay
//! thread.  Pair with `secmed-client` (or the `soak` bench) on the same
//! machine.

use secmed_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: secmed-server [ADDR] [--max-sessions N] [--idle-deadline-ms N] \
         [--replay-window N]"
    );
    std::process::exit(2)
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.map(|v| v.parse::<T>()) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("secmed-server: {flag} needs a number");
            usage()
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7788".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-sessions" => config.max_sessions = parsed(&arg, args.next()),
            "--idle-deadline-ms" => {
                let ms: u64 = parsed(&arg, args.next());
                config.idle_deadline_ns = ms.saturating_mul(1_000_000);
            }
            "--replay-window" => config.replay_window = parsed(&arg, args.next()),
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => {
                eprintln!("secmed-server: unknown flag {flag}");
                usage()
            }
            positional => addr = positional.to_string(),
        }
    }
    let server = match Server::bind_to_with(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("secmed-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let config = server.config();
    let limit = |n: u64, unit: &str| {
        if n == 0 {
            "unlimited".to_string()
        } else {
            format!("{n}{unit}")
        }
    };
    println!("secmed-server listening on {}", server.addr());
    println!(
        "admission limit {} sessions, idle deadline {}, replay window {} blobs",
        limit(config.max_sessions as u64, ""),
        limit(config.idle_deadline_ns / 1_000_000, "ms"),
        config.replay_window
    );
    println!("stop with Ctrl-C; sessions resume across reconnects within the replay window");
    secmed_pool::scope(|s| {
        // The handle is dropped without shutdown: serve until the process
        // is killed.
        let _handle = server.start(s);
    });
}
