//! The PR 5 chaos grid re-run under *server-side* fire: all 64 seeds ×
//! 3 protocols × 3 thread counts, with the client-side fault plans of
//! the original sweep AND a [`ServerFaultPlan`] killing connections,
//! stalling echoes, and cutting writes short — healed by the client
//! fabric's reconnect-and-resume.
//!
//! The invariants are exactly the shared suite's: typed outcomes only
//! (never a hang, never a panic), correct-or-honestly-non-clean,
//! byte-identical reports at 1/2/8 threads (resume replay and the
//! DRBG-jittered backoff schedule are both thread-count-independent),
//! and byte accounting that reconciles.  Every session — killed however
//! many times — must still end in a clean `Goodbye` on the ledger.

use secmed_core::{ProtocolKind, SocketFabric};
use secmed_server::{Server, ServerConfig, ServerFaultPlan, SessionOutcome};
use secmed_testkit::chaos;

/// Spins until every session-table entry is reclaimed so a reused
/// session id cannot race the previous run's teardown.
fn await_reclaim(server: &Server) {
    for _ in 0..u64::MAX >> 20 {
        if server.active_sessions() == 0 {
            return;
        }
        std::hint::spin_loop();
    }
    panic!("server never reclaimed its session table entries");
}

/// The server the grid runs against: resume enabled, a moderate
/// all-fault mix (decisions keyed per session/frame/incarnation, so one
/// plan seed serves every case distinctly).
fn chaotic_server() -> Server {
    let config = ServerConfig {
        replay_window: 8,
        chaos: Some(ServerFaultPlan::for_seed(42)),
        ..ServerConfig::default()
    };
    Server::bind_with(config).expect("bind loopback")
}

fn sweep_resilient(kind: ProtocolKind) {
    let server = chaotic_server();
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        chaos::sweep_on(kind, |seed| {
            await_reclaim(&server);
            SocketFabric::connect_with(
                addr,
                seed + 1,
                chaos::plan_for(seed).1,
                chaos::reconnect_for(seed),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: handshake failed: {e}"))
        });
        handle.shutdown();
    });
    assert_eq!(server.active_sessions(), 0, "session table leaked");
    assert_eq!(server.parked_sessions(), 0, "parked sessions leaked");
    let ledger = server.summaries();
    // Interrupted incarnations leave Suspended lines; the *final*
    // connection of every session must still say Goodbye.
    let mut last_per_session = std::collections::BTreeMap::new();
    for line in &ledger {
        last_per_session.insert(line.session, line.outcome.clone());
    }
    for (session, outcome) in &last_per_session {
        assert_eq!(
            *outcome,
            SessionOutcome::Completed,
            "session {session} never completed: {outcome:?}"
        );
    }
    // The grid must actually exercise the resume machinery: across 64
    // seeds × 3 thread counts at these rates, kills are guaranteed.
    let suspended = ledger
        .iter()
        .filter(|l| matches!(l.outcome, SessionOutcome::Suspended(_)))
        .count();
    assert!(
        suspended > 0,
        "{}: server chaos never struck — nothing was tested",
        kind.name()
    );
}

#[test]
fn resilient_chaos_das_over_sockets() {
    sweep_resilient(chaos::DAS);
}

#[test]
fn resilient_chaos_commutative_over_sockets() {
    sweep_resilient(chaos::COMMUTATIVE);
}

#[test]
fn resilient_chaos_pm_over_sockets() {
    sweep_resilient(chaos::PM);
}
