//! The PR 5 chaos suite, unmodified, parameterized over the socket
//! fabric: all 64 seeds per protocol run against a live `Server` over
//! loopback TCP, with the same invariants — typed outcomes only,
//! correct-or-honestly-non-clean, schedule independence at 1/2/8
//! threads, and byte accounting that reconciles.
//!
//! Damaged copies really cross the wire here: faults are injected on the
//! client side before the bytes hit the socket, the relay echoes them
//! back (it validates only the session header), and the echoed copy is
//! what gets recorded.  Schedule independence demands the same session
//! id for a seed's runs at every thread count, so the factory reuses
//! `seed + 1` and waits for the server to reclaim the previous
//! connection's table entry before dialing again.

use secmed_core::{ProtocolKind, SocketFabric};
use secmed_server::Server;
use secmed_testkit::chaos;

/// Spins until every session-table entry has been reclaimed, so a reused
/// session id cannot race the previous connection's teardown into a
/// `DuplicateSession` refusal.
fn await_reclaim(server: &Server) {
    for _ in 0..u64::MAX >> 20 {
        if server.active_sessions() == 0 {
            return;
        }
        std::hint::spin_loop();
    }
    panic!("server never reclaimed its session table entries");
}

fn sweep_over_sockets(kind: ProtocolKind) {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        chaos::sweep_on(kind, |seed| {
            await_reclaim(&server);
            // Session 0 is the recorder default; keep socket sessions
            // visibly non-default.
            SocketFabric::connect(addr, seed + 1, chaos::plan_for(seed).1)
                .unwrap_or_else(|e| panic!("seed {seed}: handshake failed: {e}"))
        });
        handle.shutdown();
    });
    assert_eq!(server.active_sessions(), 0, "session table leaked");
    // Every chaos run — including the aborted ones — tears down with a
    // Goodbye, so the ledger shows only completed sessions.
    assert!(server.summaries().iter().all(|s| s.completed()));
}

#[test]
fn chaos_das_over_sockets() {
    sweep_over_sockets(chaos::DAS);
}

#[test]
fn chaos_commutative_over_sockets() {
    sweep_over_sockets(chaos::COMMUTATIVE);
}

#[test]
fn chaos_pm_over_sockets() {
    sweep_over_sockets(chaos::PM);
}

#[test]
fn zero_fault_plans_are_invisible_over_sockets() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        chaos::zero_fault_invariance_on(|i| {
            await_reclaim(&server);
            SocketFabric::connect(addr, i + 1, Default::default())
                .unwrap_or_else(|e| panic!("run {i}: handshake failed: {e}"))
        });
        handle.shutdown();
    });
    assert_eq!(server.active_sessions(), 0, "session table leaked");
}
