//! The tentpole's acceptance oracle: the same seeded scenario produces a
//! byte-identical report over the in-process recorder and over a real
//! loopback-socket session, for every protocol, at 1/2/8 threads.
//!
//! Byte-identical here is the chaos fingerprint: result relation, typed
//! outcome, the complete transport log (ordering, labels, payload bytes),
//! and both Table 1 leakage views.  The in-process run threads the same
//! session id onto its frames ([`Transport::with_session`]) so the two
//! logs are comparable bit for bit; everything else about the socket run
//! — the handshake, the relay echo, the goodbye — must leave no trace.

use secmed_core::{Engine, RunOptions, ScenarioBuilder, SocketFabric, TraceSink, Transport};
use secmed_server::Server;
use secmed_testkit::chaos;

#[test]
fn loopback_sockets_are_byte_equivalent_to_in_process() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    let w = chaos::workload();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        for (pi, kind) in [chaos::DAS, chaos::COMMUTATIVE, chaos::PM]
            .into_iter()
            .enumerate()
        {
            for (ti, threads) in chaos::THREADS.into_iter().enumerate() {
                // A distinct session per run keeps this loop free of
                // reclaim races; equivalence only needs the *pair* to
                // share an id.
                let session = 100 * (pi as u64 + 1) + ti as u64;
                let opts = RunOptions::new(kind)
                    .threads(threads)
                    .trace(TraceSink::Discard);

                let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
                let local = Engine::run_on(Transport::with_session(session), &mut sc, &opts)
                    .expect("in-process run");

                let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
                let fabric =
                    SocketFabric::connect(addr, session, opts.delivery).expect("handshake");
                let remote = Engine::run_on(fabric, &mut sc, &opts).expect("socket run");

                assert_eq!(
                    chaos::fingerprint(&local),
                    chaos::fingerprint(&remote),
                    "{} at {threads} threads: socket report diverged from in-process",
                    kind.name()
                );
            }
        }
        handle.shutdown();
    });
    // The scope has joined: the ledger is complete, every session said
    // Goodbye, and the session table holds nothing.
    let summaries = server.summaries();
    assert_eq!(summaries.len(), 9, "one ledger line per socket run");
    assert!(summaries.iter().all(|s| s.completed()), "{summaries:?}");
    assert_eq!(server.active_sessions(), 0, "session table leaked");
}
