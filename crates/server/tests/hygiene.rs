//! Session-table hygiene under concurrency: seeded interleavings of
//! completing, aborting, malformed, duplicate-id, and chaos-interrupted
//! clients must leave the table empty and the ledger consistent — one
//! line per connection that spoke, a single terminal line per session.
//!
//! Also pins the `into_recorder` half-close fix: a client that says
//! `Goodbye` and immediately tears down must never be mis-recorded as
//! aborted, even with many clients hammering the server at once.

use secmed_core::{Fabric, MedError, PartyId, SocketFabric};
use secmed_server::{Server, ServerConfig, ServerFaultPlan, SessionOutcome};
use secmed_testkit::{cases, Gen};
use secmed_wire::{stream, Frame};

fn await_reclaim(server: &Server) {
    for _ in 0..u64::MAX >> 20 {
        if server.active_sessions() == 0 {
            return;
        }
        std::hint::spin_loop();
    }
    panic!("server never reclaimed its session table entries");
}

/// Drives one clean fabric session: a few relayed frames, then Goodbye.
fn run_clean(addr: std::net::SocketAddr, session: u64, frames: usize) -> Result<(), MedError> {
    let mut fabric = SocketFabric::connect(addr, session, Default::default())?;
    let mut payload = Frame::Goodbye.encode_with_session(session);
    payload[3] = 0x7f; // opaque in-session traffic to the relay
    for _ in 0..frames {
        let echo = fabric.carry(&PartyId::Client, &PartyId::Mediator, &payload)?;
        assert_eq!(echo, payload, "relay must echo verbatim");
    }
    fabric.into_recorder().map(|_| ())
}

/// What one seeded client does in the interleaving property.
#[derive(Clone, Copy, Debug)]
enum Behavior {
    /// Hello, some frames, clean Goodbye.
    Complete { frames: usize },
    /// Hello, some frames, vanish without Goodbye (parks, then drains).
    AbortDrop { frames: usize },
    /// The first frame is not a Hello: refused with a typed abort.
    BadOpener,
}

/// Concurrent seeded interleavings: whatever mix of clean closes, silent
/// drops, and malformed openers runs at once, the table ends empty and
/// every admitted session gets exactly one terminal ledger line.
#[test]
fn interleaved_sessions_leave_no_leaks_and_one_terminal_line_each() {
    cases(6, "session-hygiene", |g: &mut Gen| {
        let n = g.usize_in(4, 8);
        let behaviors: Vec<Behavior> = (0..n)
            .map(|_| match g.u64_below(4) {
                0 => Behavior::BadOpener,
                1 => Behavior::AbortDrop {
                    frames: g.usize_in(0, 3),
                },
                _ => Behavior::Complete {
                    frames: g.usize_in(0, 4),
                },
            })
            .collect();
        let config = ServerConfig {
            replay_window: 4,
            drain_deadline_ns: 500_000_000,
            ..ServerConfig::default()
        };
        let server = Server::bind_with(config).expect("bind");
        let addr = server.addr();
        secmed_pool::scope(|s| {
            let handle = server.start(s);
            let workers: Vec<_> = behaviors
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let b = *b;
                    s.spawn(move || {
                        let session = i as u64 + 1;
                        match b {
                            Behavior::Complete { frames } => {
                                run_clean(addr, session, frames).expect("clean run");
                            }
                            Behavior::AbortDrop { frames } => {
                                let fabric =
                                    SocketFabric::connect(addr, session, Default::default())
                                        .expect("handshake");
                                let mut fabric = fabric;
                                let mut payload = Frame::Goodbye.encode_with_session(session);
                                payload[3] = 0x7f;
                                for _ in 0..frames {
                                    fabric
                                        .carry(&PartyId::Client, &PartyId::Mediator, &payload)
                                        .expect("carry");
                                }
                                drop(fabric); // no Goodbye
                            }
                            Behavior::BadOpener => {
                                let mut socket =
                                    std::net::TcpStream::connect(addr).expect("connect");
                                stream::write_blob(
                                    &mut socket,
                                    &Frame::Goodbye.encode_with_session(session),
                                )
                                .expect("send opener");
                                // Refusal closes the conversation.
                                assert!(stream::read_blob(&mut socket)
                                    .expect("clean close")
                                    .is_none());
                            }
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("client thread");
            }
            handle.shutdown();
        });
        // Hygiene: nothing live, nothing parked (the drain reaped the
        // abandoned sessions).
        assert_eq!(server.active_sessions(), 0, "table leaked");
        assert_eq!(server.parked_sessions(), 0, "parked leaked");
        let ledger = server.summaries();
        for (i, b) in behaviors.iter().enumerate() {
            let session = i as u64 + 1;
            let lines: Vec<_> = ledger.iter().filter(|l| l.session == session).collect();
            let completed = lines.iter().filter(|l| l.completed()).count();
            let aborted = lines
                .iter()
                .filter(|l| matches!(l.outcome, SessionOutcome::Aborted(_)))
                .count();
            let suspended = lines
                .iter()
                .filter(|l| matches!(l.outcome, SessionOutcome::Suspended(_)))
                .count();
            match b {
                Behavior::Complete { .. } => {
                    assert_eq!(
                        (completed, aborted, suspended),
                        (1, 0, 0),
                        "session {session} (Complete): {lines:?}"
                    );
                }
                Behavior::AbortDrop { .. } => {
                    // Parked on the drop, then rewritten by the reaper at
                    // drain time: one terminal abort, no stale Suspended.
                    assert_eq!(
                        (completed, aborted, suspended),
                        (0, 1, 0),
                        "session {session} (AbortDrop): {lines:?}"
                    );
                }
                Behavior::BadOpener => {
                    assert_eq!(
                        (completed, aborted, suspended),
                        (0, 1, 0),
                        "session {session} (BadOpener): {lines:?}"
                    );
                }
            }
        }
    });
}

/// Racing two Hellos on the *same* session id: however the race lands,
/// nothing leaks and the ledger accounts for both connections.
#[test]
fn duplicate_id_races_are_refused_or_serialized_never_leaked() {
    cases(6, "dup-race", |g: &mut Gen| {
        let frames = g.usize_in(0, 3);
        let server = Server::bind().expect("bind");
        let addr = server.addr();
        let outcomes = secmed_pool::scope(|s| {
            let handle = server.start(s);
            let racers: Vec<_> = (0..2)
                .map(|_| s.spawn(move || run_clean(addr, 77, frames)))
                .collect();
            let outcomes: Vec<Result<(), MedError>> = racers
                .into_iter()
                .map(|r| r.join().expect("racer"))
                .collect();
            await_reclaim(&server);
            handle.shutdown();
            outcomes
        });
        let won = outcomes.iter().filter(|r| r.is_ok()).count();
        for r in &outcomes {
            if let Err(e) = r {
                assert!(
                    matches!(e, MedError::Fabric(m) if m.contains("DuplicateSession")),
                    "loser must see the typed duplicate refusal, got: {e}"
                );
            }
        }
        assert!(won >= 1, "at least one racer must complete");
        let ledger = server.summaries();
        let completed = ledger.iter().filter(|l| l.completed()).count();
        assert_eq!(completed, won, "one Completed line per winner: {ledger:?}");
        assert_eq!(
            ledger.len(),
            2,
            "both connections must be on the ledger: {ledger:?}"
        );
        assert_eq!(server.active_sessions(), 0, "table leaked");
    });
}

/// The `into_recorder` half-close regression: under load, every client
/// that said Goodbye is recorded `Completed` — the goodbye must survive
/// the client's teardown (write-side shutdown + drain, not an abrupt
/// close that can reset the connection).
#[test]
fn goodbyes_survive_teardown_under_load() {
    let server = Server::bind().expect("bind");
    let addr = server.addr();
    const CLIENTS: usize = 24;
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| s.spawn(move || run_clean(addr, i as u64 + 1, 3).expect("clean run")))
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }
        await_reclaim(&server);
        handle.shutdown();
    });
    let ledger = server.summaries();
    assert_eq!(ledger.len(), CLIENTS, "{ledger:?}");
    let completed = ledger.iter().filter(|l| l.completed()).count();
    assert_eq!(
        completed, CLIENTS,
        "every clean client must be recorded Completed: {ledger:?}"
    );
    assert_eq!(server.active_sessions(), 0, "session table leaked");
}

/// Chaos-interrupted clients racing clean ones: resumes interleave with
/// admissions and teardowns, and the table still ends empty with every
/// session's final connection Completed.
#[test]
fn resumes_interleave_cleanly_with_other_sessions() {
    let config = ServerConfig {
        replay_window: 8,
        chaos: Some(ServerFaultPlan::for_seed(99)),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind");
    let addr = server.addr();
    const CLIENTS: usize = 8;
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                s.spawn(move || {
                    let session = i as u64 + 1;
                    let mut fabric = SocketFabric::connect_with(
                        addr,
                        session,
                        Default::default(),
                        secmed_core::ReconnectPolicy {
                            max_reconnects: 32,
                            base_backoff_ns: 50_000,
                            backoff_cap_ns: 2_000_000,
                            seed: session,
                        },
                    )
                    .expect("handshake");
                    let mut payload = Frame::Goodbye.encode_with_session(session);
                    payload[3] = 0x7f;
                    for _ in 0..12 {
                        let echo = fabric
                            .carry(&PartyId::Client, &PartyId::Mediator, &payload)
                            .expect("carry with resume");
                        assert_eq!(echo, payload);
                    }
                    fabric.into_recorder().expect("goodbye with resume")
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }
        await_reclaim(&server);
        handle.shutdown();
    });
    assert_eq!(server.active_sessions(), 0, "table leaked");
    let ledger = server.summaries();
    let mut last = std::collections::BTreeMap::new();
    for line in &ledger {
        last.insert(line.session, line.outcome.clone());
    }
    assert_eq!(last.len(), CLIENTS);
    for (session, outcome) in &last {
        assert_eq!(
            *outcome,
            SessionOutcome::Completed,
            "session {session}: {outcome:?}"
        );
    }
}
