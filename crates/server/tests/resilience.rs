//! The resilience layer's acceptance suite: reconnect-and-resume
//! equivalence, admission control, idle deadlines, graceful drain, and
//! the simulated server restart.
//!
//! The headline invariant mirrors PR 8's equivalence oracle: a session
//! whose connections are killed by *server-side* chaos, resumed by the
//! client fabric, must produce a [`RunReport`] byte-identical (chaos
//! fingerprint: result, outcome, transport log, both leakage views) to
//! the same scenario run against a faithful server — for every protocol,
//! at 1/2/8 threads.  Resume replays exactly the echoes the client
//! missed and sequence numbers never appear in frame bytes, so the
//! recorded log cannot tell the difference.

use std::sync::Arc;

use secmed_core::{
    Engine, MedError, ReconnectPolicy, RunOptions, ScenarioBuilder, SocketFabric, TraceSink,
};
use secmed_obs::metrics::ManualClock;
use secmed_server::{Server, ServerConfig, ServerFaultPlan, SessionOutcome};
use secmed_testkit::chaos;
use secmed_wire::{stream, Frame, SessionStatus, WIRE_VERSION};

/// Spins until the server's session table is empty (relay teardown runs
/// a socket-read behind the client's drop).
fn await_reclaim(server: &Server) {
    for _ in 0..u64::MAX >> 20 {
        if server.active_sessions() == 0 {
            return;
        }
        std::hint::spin_loop();
    }
    panic!("server never reclaimed its session table entries");
}

/// A config with resume enabled and aggressive server-side kills and
/// partial writes — everything the resume protocol must paper over.
fn killing_config(seed: u64) -> ServerConfig {
    ServerConfig {
        replay_window: 8,
        chaos: Some(ServerFaultPlan {
            seed,
            kill_per_mille: 120,
            stall_per_mille: 40,
            stall_ns: 100_000,
            partial_write_per_mille: 80,
            restart_at_frame: None,
        }),
        ..ServerConfig::default()
    }
}

/// Server-side kills + client resume leave the report byte-identical to
/// a run against a faithful server, per protocol, per thread count.
#[test]
fn resumed_runs_are_byte_identical_to_undisturbed_runs() {
    let w = chaos::workload();
    let mut interruptions = 0usize;
    for (pi, kind) in [chaos::DAS, chaos::COMMUTATIVE, chaos::PM]
        .into_iter()
        .enumerate()
    {
        for (ti, threads) in chaos::THREADS.into_iter().enumerate() {
            let session = 1000 + 10 * (pi as u64) + ti as u64;
            let opts = RunOptions::new(kind)
                .threads(threads)
                .trace(TraceSink::Discard);

            // The yardstick: the same session id against a faithful server.
            let clean_server = Server::bind().expect("bind");
            let clean = secmed_pool::scope(|s| {
                let handle = clean_server.start(s);
                let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
                let fabric = SocketFabric::connect(clean_server.addr(), session, opts.delivery)
                    .expect("handshake");
                let report = Engine::run_on(fabric, &mut sc, &opts).expect("clean run");
                handle.shutdown();
                report
            });

            let chaotic_server = Server::bind_with(killing_config(session)).expect("bind chaotic");
            let resumed = secmed_pool::scope(|s| {
                let handle = chaotic_server.start(s);
                let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
                let fabric = SocketFabric::connect_with(
                    chaotic_server.addr(),
                    session,
                    opts.delivery,
                    chaos::reconnect_for(session),
                )
                .expect("handshake");
                let report = Engine::run_on(fabric, &mut sc, &opts).expect("resumed run");
                handle.shutdown();
                report
            });

            assert_eq!(
                chaos::fingerprint(&clean),
                chaos::fingerprint(&resumed),
                "{} at {threads} threads: resumed report diverged",
                kind.name()
            );
            // Count the kills/partials this cell drew; any individual
            // cell may escape unscathed, but across nine cells at these
            // rates the chaos machinery must demonstrably fire.
            let ledger = chaotic_server.summaries();
            interruptions += ledger
                .iter()
                .filter(|l| matches!(l.outcome, SessionOutcome::Suspended(_)))
                .count();
            assert!(
                ledger.iter().any(|l| l.completed()),
                "{} at {threads} threads: resumed session never completed",
                kind.name()
            );
            assert_eq!(chaotic_server.active_sessions(), 0, "table leaked");
        }
    }
    assert!(
        interruptions > 0,
        "no cell drew a kill or partial write — rates too low to test resume"
    );
}

/// A simulated restart mid-session: the server forgets the session, the
/// client's resume is answered `UnknownSession`, and the run fails with
/// a *typed* error — never a hang or a panic.
#[test]
fn server_restart_surfaces_a_typed_error() {
    let config = ServerConfig {
        replay_window: 8,
        chaos: Some(ServerFaultPlan {
            restart_at_frame: Some(4),
            ..ServerFaultPlan::none(7)
        }),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind");
    let addr = server.addr();
    let w = chaos::workload();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let opts = RunOptions::new(chaos::DAS).trace(TraceSink::Discard);
        let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
        let fabric = SocketFabric::connect_with(addr, 5, opts.delivery, chaos::reconnect_for(5))
            .expect("handshake");
        match Engine::run_on(fabric, &mut sc, &opts) {
            Err(MedError::Fabric(msg)) => {
                assert!(
                    msg.contains("unknown session"),
                    "wrong refusal surfaced: {msg}"
                );
            }
            Err(other) => panic!("expected a Fabric error, got: {other}"),
            Ok(_) => panic!("a forgotten session cannot complete"),
        }
        await_reclaim(&server);
        handle.shutdown();
    });
    let ledger = server.summaries();
    assert!(
        ledger.iter().any(|l| matches!(
            &l.outcome,
            SessionOutcome::Aborted(m) if m.contains("restarted")
        )),
        "restart must leave its typed abort in the ledger: {ledger:?}"
    );
    assert!(
        ledger.iter().any(|l| l.outcome
            == SessionOutcome::ResumeRejected(secmed_wire::ResumeStatus::UnknownSession)),
        "the refused resume must be in the ledger: {ledger:?}"
    );
    assert_eq!(server.active_sessions(), 0);
}

/// Admission control: with `max_sessions = 2`, a third concurrent Hello
/// is refused with the retryable [`MedError::Busy`]; once a slot frees,
/// the same id is admitted.
#[test]
fn over_limit_hellos_get_a_retryable_busy_refusal() {
    let config = ServerConfig {
        max_sessions: 2,
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let a = SocketFabric::connect(addr, 1, Default::default()).expect("first");
        let b = SocketFabric::connect(addr, 2, Default::default()).expect("second");
        match SocketFabric::connect(addr, 3, Default::default()) {
            Err(MedError::Busy(msg)) => {
                assert!(msg.contains("admission"), "unexpected message: {msg}")
            }
            Err(other) => panic!("expected MedError::Busy, got: {other}"),
            Ok(_) => panic!("third session must be refused at max_sessions = 2"),
        }
        drop(a);
        drop(b);
        for _ in 0..u64::MAX >> 20 {
            if server.active_sessions() == 0 {
                break;
            }
            std::hint::spin_loop();
        }
        // With slots free again, the refused id is admitted — and a
        // reconnect policy turns the refusal into silent retry.
        let c =
            SocketFabric::connect_with(addr, 3, Default::default(), ReconnectPolicy::standard(3))
                .expect("admitted after slots freed");
        drop(c);
        await_reclaim(&server);
        handle.shutdown();
    });
    let refused = server
        .summaries()
        .iter()
        .filter(|l| l.outcome == SessionOutcome::Rejected(SessionStatus::ServerBusy))
        .count();
    assert_eq!(
        refused,
        1,
        "exactly one ServerBusy line: {:?}",
        server.summaries()
    );
    assert_eq!(server.active_sessions(), 0);
}

/// Idle deadlines through a manual clock: a parked session whose client
/// never returns is reaped, and its `Suspended` ledger line is rewritten
/// into the typed idle abort.
#[test]
fn parked_sessions_are_reaped_after_the_idle_deadline() {
    let clock = Arc::new(ManualClock::at(0));
    let config = ServerConfig {
        replay_window: 4,
        idle_deadline_ns: 1_000_000_000,
        clock: clock.clone(),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(config).expect("bind");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let mut socket = std::net::TcpStream::connect(addr).expect("connect");
        let hello = Frame::Hello {
            client_version: WIRE_VERSION,
            max_attempts: 3,
            degrade_on_exhausted: false,
        };
        stream::write_blob(&mut socket, &hello.encode_with_session(11)).expect("hello");
        stream::read_blob(&mut socket).expect("ack").expect("ack");
        // Relay one frame, then vanish: with resume enabled the server
        // parks the session instead of aborting.
        let mut payload = Frame::Goodbye.encode_with_session(11);
        payload[3] = 0x7f;
        stream::write_blob(&mut socket, &payload).expect("send");
        stream::read_blob(&mut socket).expect("echo").expect("echo");
        drop(socket);
        for _ in 0..u64::MAX >> 20 {
            if server.parked_sessions() == 1 {
                break;
            }
            std::hint::spin_loop();
        }
        assert_eq!(server.parked_sessions(), 1, "disconnect must park");
        assert!(
            matches!(
                server.summaries().first().map(|l| l.outcome.clone()),
                Some(SessionOutcome::Suspended(_))
            ),
            "parked session must show as Suspended: {:?}",
            server.summaries()
        );

        // Under the deadline: still parked.
        clock.advance(999_999_999);
        assert_eq!(server.reap_idle(), 0);
        assert_eq!(server.parked_sessions(), 1);

        // Past it: reaped, ledger rewritten.
        clock.advance(2);
        assert_eq!(server.reap_idle(), 1);
        assert_eq!(server.active_sessions(), 0);
        handle.shutdown();
    });
    let ledger = server.summaries();
    assert_eq!(ledger.len(), 1);
    assert_eq!(
        ledger[0].outcome,
        SessionOutcome::Aborted("idle deadline exceeded".into()),
        "the Suspended line must be rewritten in place"
    );
}

/// Graceful drain: `shutdown()` refuses new Hellos with `ServerBusy`
/// (no silent drops — the accept-loop race of PR 8) while an in-flight
/// session runs to a clean Goodbye.
#[test]
fn drain_refuses_late_hellos_and_lets_in_flight_sessions_finish() {
    let server = Server::bind().expect("bind");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let mut fabric = SocketFabric::connect(addr, 21, Default::default()).expect("in-flight");
        // Shutdown with the session still open: drain must wait for it.
        handle.shutdown();
        // A straggler dialing mid-drain is refused, visibly.
        match SocketFabric::connect(addr, 22, Default::default()) {
            Err(MedError::Busy(_)) => {}
            Err(other) => panic!("straggler should see Busy, got: {other}"),
            Ok(_) => panic!("draining server must not admit new sessions"),
        }
        // The in-flight session still works and closes cleanly.
        use secmed_core::{Fabric, PartyId};
        let payload = Frame::Goodbye.encode_with_session(21);
        let mut damaged = payload.clone();
        damaged[3] = 0x7f;
        let echo = fabric
            .carry(&PartyId::Client, &PartyId::Mediator, &damaged)
            .expect("carry during drain");
        assert_eq!(echo, damaged);
        fabric.into_recorder().expect("clean goodbye during drain");
    });
    let ledger = server.summaries();
    assert_eq!(ledger.len(), 2, "{ledger:?}");
    assert!(
        ledger.iter().any(|l| l.session == 21 && l.completed()),
        "in-flight session must finish cleanly: {ledger:?}"
    );
    assert!(
        ledger
            .iter()
            .any(|l| l.session == 22
                && l.outcome == SessionOutcome::Rejected(SessionStatus::ServerBusy)),
        "straggler must be refused on the record: {ledger:?}"
    );
    assert_eq!(server.active_sessions(), 0);
}
