//! Session-negotiation failure paths: version mismatch, duplicate
//! session ids, and clients that vanish mid-protocol.  The common
//! invariant is resource hygiene — every exit path reclaims the session
//! table entry and writes a ledger line with a typed outcome.

use std::net::TcpStream;

use secmed_core::{DeliveryPolicy, MedError, SocketFabric};
use secmed_server::{Server, SessionOutcome};
use secmed_wire::{stream, Frame, SessionStatus, WIRE_VERSION};

/// Spins until the server's relay threads have reclaimed every session
/// table entry.  Reclaim happens a socket-read after the client drops, so
/// this is bounded in practice; the cap turns a server bug into a clean
/// panic instead of a hang.
fn await_reclaim(server: &Server) {
    for _ in 0..u64::MAX >> 20 {
        if server.active_sessions() == 0 {
            return;
        }
        std::hint::spin_loop();
    }
    panic!("server never reclaimed its session table entries");
}

/// A handshake whose `Hello` *body* advertises the wrong client version
/// is refused with the server's version in the NACK.  (The frame header
/// must stay well-formed — otherwise the server could not decode the
/// hello to answer it at all.)
#[test]
fn version_mismatch_is_refused_with_the_servers_version() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let mut socket = TcpStream::connect(addr).expect("connect");
        let hello = Frame::Hello {
            client_version: WIRE_VERSION + 1,
            max_attempts: 3,
            degrade_on_exhausted: false,
        };
        stream::write_blob(&mut socket, &hello.encode_with_session(7)).expect("send hello");
        let ack = stream::read_blob(&mut socket)
            .expect("read ack")
            .expect("server answered");
        let frame = Frame::decode_expecting_session(&ack, 7).expect("well-formed ack");
        assert_eq!(
            frame,
            Frame::HelloAck {
                status: SessionStatus::VersionMismatch(WIRE_VERSION)
            }
        );
        // The refusal is also the end of the conversation.
        assert!(stream::read_blob(&mut socket)
            .expect("clean close")
            .is_none());
        handle.shutdown();
    });
    let summaries = server.summaries();
    assert_eq!(summaries.len(), 1);
    assert_eq!(
        summaries[0].outcome,
        SessionOutcome::Rejected(SessionStatus::VersionMismatch(WIRE_VERSION))
    );
    assert_eq!(server.active_sessions(), 0);
}

/// A second `Hello` proposing a session id that is still live is refused
/// with `DuplicateSession`; once the first client drops, the id becomes
/// usable again — the table entry really was reclaimed, not leaked.
#[test]
fn duplicate_session_id_is_refused_while_live_and_reusable_after() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let first = SocketFabric::connect(addr, 7, DeliveryPolicy::default()).expect("handshake");
        assert_eq!(server.active_sessions(), 1);

        match SocketFabric::connect(addr, 7, DeliveryPolicy::default()) {
            Err(MedError::Fabric(msg)) => {
                assert!(
                    msg.contains("DuplicateSession"),
                    "unexpected refusal: {msg}"
                )
            }
            Err(other) => panic!("wrong error class for a duplicate: {other}"),
            Ok(_) => panic!("duplicate session must be refused"),
        }

        // Drop the first client without a Goodbye: an abrupt disconnect
        // must also release the id.
        drop(first);
        await_reclaim(&server);
        let again = SocketFabric::connect(addr, 7, DeliveryPolicy::default())
            .unwrap_or_else(|e| panic!("reclaimed id must be reusable: {e}"));
        drop(again);
        await_reclaim(&server);
        handle.shutdown();
    });
    assert_eq!(server.active_sessions(), 0);
}

/// A client that sends protocol traffic and then vanishes produces a
/// typed `Aborted` ledger line — with the relayed traffic accounted —
/// and no session-table leak.
#[test]
fn client_disconnect_mid_protocol_aborts_and_reclaims() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let mut socket = TcpStream::connect(addr).expect("connect");
        let hello = Frame::Hello {
            client_version: WIRE_VERSION,
            max_attempts: 3,
            degrade_on_exhausted: true,
        };
        stream::write_blob(&mut socket, &hello.encode_with_session(9)).expect("send hello");
        let ack = stream::read_blob(&mut socket)
            .expect("read ack")
            .expect("server answered");
        assert_eq!(
            Frame::decode_expecting_session(&ack, 9).expect("ack decodes"),
            Frame::HelloAck {
                status: SessionStatus::Accepted
            }
        );
        // One mid-protocol message (the relay echoes it back verbatim),
        // then the client dies without a Goodbye.
        let mut payload = Frame::Goodbye.encode_with_session(9);
        payload[3] = 0x7f; // an unknown kind: opaque protocol traffic to the relay
        stream::write_blob(&mut socket, &payload).expect("send frame");
        let echo = stream::read_blob(&mut socket)
            .expect("read echo")
            .expect("echoed");
        assert_eq!(echo, payload, "relay must echo traffic verbatim");
        drop(socket);

        await_reclaim(&server);
        handle.shutdown();
    });
    let summaries = server.summaries();
    assert_eq!(summaries.len(), 1);
    let s = &summaries[0];
    assert_eq!(s.session, 9);
    assert_eq!(s.frames, 1);
    assert!(s.bytes > 0);
    match &s.outcome {
        SessionOutcome::Aborted(msg) => {
            assert!(msg.contains("disconnected"), "unexpected reason: {msg}")
        }
        other => panic!("expected a typed abort, got {other:?}"),
    }
    assert_eq!(server.active_sessions(), 0);
}

/// A connection whose first frame is not a `Hello` is turned away with a
/// typed abort, not served.
#[test]
fn non_hello_opening_frame_is_a_typed_abort() {
    let server = Server::bind().expect("bind loopback");
    let addr = server.addr();
    secmed_pool::scope(|s| {
        let handle = server.start(s);
        let mut socket = TcpStream::connect(addr).expect("connect");
        stream::write_blob(&mut socket, &Frame::Goodbye.encode_with_session(3))
            .expect("send goodbye first");
        assert!(stream::read_blob(&mut socket)
            .expect("clean close")
            .is_none());
        handle.shutdown();
    });
    let summaries = server.summaries();
    assert_eq!(summaries.len(), 1);
    match &summaries[0].outcome {
        SessionOutcome::Aborted(msg) => {
            assert!(msg.contains("expected hello"), "unexpected reason: {msg}")
        }
        other => panic!("expected a typed abort, got {other:?}"),
    }
    assert_eq!(server.active_sessions(), 0);
}
