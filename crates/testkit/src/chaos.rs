//! The shared chaos harness: the PR 5 seeded fault sweep, parameterized
//! over the [`Fabric`] that carries the bytes.
//!
//! The suite's four invariants (typed outcomes only; correct or honestly
//! non-clean; schedule independence; byte accounting reconciles) are
//! statements about the *recorded delivery semantics*, not about any one
//! fabric.  This module owns the seeds, plans, fingerprints, and checks;
//! a caller supplies a factory that builds a fresh fabric per run — the
//! in-process recorder in `secmed-core`'s own tests, a loopback
//! [`SocketFabric`](secmed_core::SocketFabric) session in the server's —
//! and the identical sweep must pass over both.
//!
//! Fingerprints deliberately exclude `RunReport::primitives`: the
//! primitive census is a process-global counter bank, so concurrent test
//! threads pollute each other's deltas.  Everything else — result,
//! outcome, transport log, leakage views — is compared byte for byte.

use secmed_core::workload::{Workload, WorkloadSpec};
use secmed_core::{
    CommutativeConfig, DasConfig, DeliveryPolicy, Engine, Fabric, FaultPlan, OnExhausted, Outage,
    PartyId, PmConfig, ProtocolKind, ReconnectPolicy, RunOptions, RunOutcome, RunReport,
    ScenarioBuilder, TraceSink,
};

use crate::Gen;

/// Fault seeds swept per protocol (the PR 5 floor is 64).
pub const SEEDS: u64 = 64;

/// Thread counts every seed must agree across.
pub const THREADS: [usize; 3] = [1, 2, 8];

/// The DAS protocol flavor the sweep drives.
pub const DAS: ProtocolKind = ProtocolKind::Das(DasConfig {
    scheme: secmed_das::PartitionScheme::EquiDepth(2),
    setting: secmed_core::DasSetting::ClientSetting,
});

/// The commutative-encryption flavor the sweep drives.
pub const COMMUTATIVE: ProtocolKind = ProtocolKind::Commutative(CommutativeConfig {
    mode: secmed_core::CommutativeMode::IdReferences,
});

/// The private-matching flavor the sweep drives.
pub const PM: ProtocolKind = ProtocolKind::Pm(PmConfig {
    eval: secmed_core::PmEval::Horner,
    payload: secmed_core::PmPayloadMode::SessionKeyTable,
});

/// A deliberately tiny workload: the sweep's cost is dominated by
/// public-key work per row, so chaos coverage buys breadth with a small
/// join, not a large one.
pub fn workload() -> Workload {
    WorkloadSpec {
        left_rows: 6,
        right_rows: 6,
        left_domain: 3,
        right_domain: 3,
        shared_values: 2,
        payload_attrs: 1,
        seed: "chaos".to_string(),
        ..Default::default()
    }
    .generate()
}

/// The fault plan and retry policy for one chaos case, drawn entirely
/// from the testkit DRBG so every case reproduces from its seed alone.
pub fn plan_for(seed: u64) -> (FaultPlan, DeliveryPolicy) {
    let mut g = Gen::for_case("chaos-plan", seed);
    let mut plan = FaultPlan::none(format!("chaos/{seed}"));
    plan.drop_per_mille = g.per_mille(120);
    plan.corrupt_per_mille = g.per_mille(120);
    plan.truncate_per_mille = g.per_mille(100);
    plan.duplicate_per_mille = g.per_mille(100);
    plan.delay_per_mille = g.per_mille(100);
    // One case in four also takes a party down for a span of steps.
    if g.u64_below(4) == 0 {
        let party = g
            .choose(&[
                PartyId::Mediator,
                PartyId::Client,
                PartyId::source("r1"),
                PartyId::source("r2"),
            ])
            .clone();
        plan.outages.push(Outage {
            party,
            from_step: g.u64_below(12),
            steps: 1 + g.u64_below(3),
        });
    }
    let policy = DeliveryPolicy {
        max_attempts: 2 + (seed % 3) as u32,
        on_exhausted: if seed.is_multiple_of(2) {
            OnExhausted::Abort
        } else {
            OnExhausted::Degrade
        },
    };
    (plan, policy)
}

/// The client reconnect discipline for one chaos case: a generous redial
/// budget (server-side kills can strike several times per run) with fast,
/// seed-keyed jittered backoff, so sweeps stay quick *and* deterministic
/// at every thread count.
pub fn reconnect_for(seed: u64) -> ReconnectPolicy {
    ReconnectPolicy {
        max_reconnects: 64,
        base_backoff_ns: 50_000,
        backoff_cap_ns: 2_000_000,
        seed,
    }
}

/// One chaos run over a caller-supplied fabric.  Under an installed plan
/// the engine must never return `Err` — that is invariant 1.
pub fn run_chaos_on<Fab: Fabric>(
    fabric: Fab,
    kind: ProtocolKind,
    seed: u64,
    threads: usize,
) -> RunReport {
    let w = workload();
    let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
    let (plan, policy) = plan_for(seed);
    let opts = RunOptions::new(kind)
        .threads(threads)
        .trace(TraceSink::Discard)
        .delivery(policy)
        .faults(plan);
    Engine::run_on(fabric, &mut sc, &opts)
        .unwrap_or_else(|e| panic!("{} seed {seed}: chaos run returned Err: {e}", kind.name()))
}

/// Everything a run reports except the process-global primitive census
/// (see the module docs for why it is excluded).
pub fn fingerprint(r: &RunReport) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}",
        r.result, r.outcome, r.transport, r.mediator_view, r.client_view
    )
}

/// The fault-free result relation, the yardstick for invariant 2.
pub fn expected_result(kind: ProtocolKind) -> String {
    let w = workload();
    let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
    let opts = RunOptions::new(kind).trace(TraceSink::Discard);
    let report = Engine::run(&mut sc, &opts).expect("fault-free run succeeds");
    assert!(report.outcome.is_clean(), "fault-free run must be Clean");
    format!("{:?}", report.result)
}

/// Invariants 2 and 4 over one report (already known not to have
/// panicked, invariant 1).
pub fn check_report(kind: ProtocolKind, seed: u64, report: &RunReport, expected: &str) {
    let name = kind.name();
    match &report.outcome {
        RunOutcome::Clean | RunOutcome::RecoveredWithRetries { .. } => {
            assert_eq!(
                format!("{:?}", report.result),
                expected,
                "{name} seed {seed}: outcome {} but the result diverged",
                report.outcome
            );
        }
        RunOutcome::Degraded { details, .. } => {
            assert!(
                !details.is_empty(),
                "{name} seed {seed}: Degraded without details"
            );
        }
        RunOutcome::Aborted { .. } => {
            assert_eq!(
                report.result.len(),
                0,
                "{name} seed {seed}: Aborted run must not carry rows"
            );
        }
    }
    // Retries reported on the outcome come from the fabric's counter.
    assert_eq!(
        report.outcome.retries(),
        report.transport.retries(),
        "{name} seed {seed}: outcome retries diverged from the fabric"
    );
    // Invariant 4: the receiver partition of the log covers every byte —
    // failed attempts, duplicates, and delayed copies included.
    let parties = [
        PartyId::Client,
        PartyId::Mediator,
        PartyId::source("r1"),
        PartyId::source("r2"),
        PartyId::Ca,
    ];
    let per_receiver: usize = parties
        .iter()
        .map(|p| report.transport.bytes_received_by(p))
        .sum();
    assert_eq!(
        per_receiver,
        report.transport.total_bytes(),
        "{name} seed {seed}: per-receiver bytes do not partition the log"
    );
    assert_eq!(
        report.mediator_view.bytes_observed,
        report.transport.bytes_received_by(&PartyId::Mediator),
        "{name} seed {seed}: mediator view out of sync with the log"
    );
    assert_eq!(
        report.client_view.bytes_received,
        report.transport.bytes_received_by(&PartyId::Client),
        "{name} seed {seed}: client view out of sync with the log"
    );
    // Overhead never exceeds the log it is carved from.
    let (extra_msgs, extra_bytes) = report.transport.overhead();
    assert!(extra_msgs <= report.transport.message_count());
    assert!(extra_bytes <= report.transport.total_bytes());
}

/// Sweeps all seeds for one protocol over fabrics built by `make_fabric`
/// (called once per run; it receives the case seed and must yield a
/// fresh fabric whose recorded semantics do not depend on the thread
/// count).  Each seed runs at every thread count, invariants 2 and 4 are
/// checked on the sequential report, and invariant 3 compares the full
/// fingerprints across thread counts.
pub fn sweep_on<Fab, F>(kind: ProtocolKind, make_fabric: F)
where
    Fab: Fabric,
    F: Fn(u64) -> Fab,
{
    let expected = expected_result(kind);
    let mut outcomes = [0usize; 4];
    for seed in 0..SEEDS {
        let base = run_chaos_on(make_fabric(seed), kind, seed, THREADS[0]);
        check_report(kind, seed, &base, &expected);
        let base_print = fingerprint(&base);
        for &threads in &THREADS[1..] {
            let other = fingerprint(&run_chaos_on(make_fabric(seed), kind, seed, threads));
            assert_eq!(
                base_print,
                other,
                "{} seed {seed}: report diverged between 1 and {threads} threads",
                kind.name()
            );
        }
        match base.outcome {
            RunOutcome::Clean => outcomes[0] += 1,
            RunOutcome::RecoveredWithRetries { .. } => outcomes[1] += 1,
            RunOutcome::Degraded { .. } => outcomes[2] += 1,
            RunOutcome::Aborted { .. } => outcomes[3] += 1,
        }
    }
    // The sweep must actually exercise the fault machinery: across 64
    // seeded plans at these rates, both recovery and non-clean endings
    // occur.  (Counts are deterministic — seeded plans, seeded runs.)
    assert!(
        outcomes[1] + outcomes[2] + outcomes[3] > 0,
        "{}: no seed produced a non-clean outcome — rates too low to test anything: {outcomes:?}",
        kind.name()
    );
    assert!(
        outcomes[0] + outcomes[1] > 0,
        "{}: no seed delivered a clean-or-recovered run: {outcomes:?}",
        kind.name()
    );
}

/// The acceptance boundary for the whole fault layer: installing a plan
/// with every rate at zero changes nothing — report fingerprints
/// (result, outcome, transport log, views) are byte-identical to a run
/// with no plan installed at all.  Parameterized over the fabric like
/// [`sweep_on`]; the factory is called once per run with a per-kind
/// index, and both runs of a pair receive the *same* index — fabrics
/// that thread an identity (a session id) onto their frames must keep
/// the pair comparable byte for byte.
pub fn zero_fault_invariance_on<Fab, F>(make_fabric: F)
where
    Fab: Fabric,
    F: Fn(u64) -> Fab,
{
    for (i, kind) in [DAS, COMMUTATIVE, PM].into_iter().enumerate() {
        let w = workload();
        let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
        let opts = RunOptions::new(kind).trace(TraceSink::Discard);
        let bare = Engine::run_on(make_fabric(i as u64), &mut sc, &opts).expect("fault-free run");

        let mut sc = ScenarioBuilder::new(&w).seed("chaos").build();
        let opts = RunOptions::new(kind)
            .trace(TraceSink::Discard)
            .faults(FaultPlan::none("zero"));
        let zeroed = Engine::run_on(make_fabric(i as u64), &mut sc, &opts).expect("zero-fault run");

        assert_eq!(
            fingerprint(&bare),
            fingerprint(&zeroed),
            "{}: a zero-rate plan must be observationally absent",
            kind.name()
        );
    }
}
