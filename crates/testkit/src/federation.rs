//! Seeded N-table federation generator.
//!
//! Produces a chain of relations `t0(k0, v0)`, `t1(k0, k1, v1)`, ...,
//! `t{N-1}(k{N-2}, v{N-1})` where each adjacent pair shares exactly one
//! join key.  Key values are drawn uniformly from a domain whose width
//! controls the join selectivity: with `rows` rows over `key_domain`
//! values, adjacent tables match on roughly `rows² / key_domain` pairs, so
//! narrow domains produce dense joins and wide domains sparse ones.
//!
//! Everything is drawn from a [`Gen`], so a federation is a pure function
//! of the generator's label and case index — planner and engine suites can
//! regenerate the exact catalog of a failing case from the test output.

use std::collections::BTreeMap;

use relalg::{Relation, Schema, Type, Value};

use crate::Gen;

/// Shape parameters of a generated federation.
#[derive(Debug, Clone, Copy)]
pub struct FederationSpec {
    /// Number of tables in the chain (≥ 2).
    pub tables: usize,
    /// Rows drawn per table (duplicates are collapsed, so the final count
    /// may be slightly lower).
    pub rows: usize,
    /// Width of each shared-key domain — the selectivity knob.
    pub key_domain: u64,
    /// Width of each payload-attribute domain.
    pub payload_domain: u64,
}

impl Default for FederationSpec {
    fn default() -> Self {
        FederationSpec {
            tables: 3,
            rows: 24,
            key_domain: 12,
            payload_domain: 1000,
        }
    }
}

/// A generated federation: the catalog plus its natural-join chain query.
#[derive(Debug, Clone)]
pub struct Federation {
    /// Relations by table name (`t0`, `t1`, ...).
    pub catalog: BTreeMap<String, Relation>,
}

impl Federation {
    /// The schemas of the catalog, keyed like the catalog.
    pub fn schemas(&self) -> BTreeMap<String, Schema> {
        self.catalog
            .iter()
            .map(|(name, rel)| (name.clone(), rel.schema().clone()))
            .collect()
    }

    /// The natural-join chain query over every table, in chain order.
    pub fn query(&self) -> String {
        let names: Vec<String> = (0..self.catalog.len()).map(|i| format!("t{i}")).collect();
        format!("select * from {}", names.join(" natural join "))
    }
}

/// Generates a chain federation from `g` under `spec`.
///
/// # Panics
///
/// Panics if `spec.tables < 2` or any domain/row count is zero — those
/// shapes have no join to mediate.
pub fn chain(g: &mut Gen, spec: &FederationSpec) -> Federation {
    assert!(spec.tables >= 2, "a federation needs at least two tables");
    assert!(
        spec.rows > 0 && spec.key_domain > 0 && spec.payload_domain > 0,
        "degenerate federation shape"
    );
    let mut catalog = BTreeMap::new();
    for i in 0..spec.tables {
        let mut attrs: Vec<(String, Type)> = Vec::new();
        if i > 0 {
            attrs.push((format!("k{}", i - 1), Type::Int));
        }
        if i + 1 < spec.tables {
            attrs.push((format!("k{i}"), Type::Int));
        }
        attrs.push((format!("v{i}"), Type::Int));
        let refs: Vec<(&str, Type)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let rows: Vec<Vec<Value>> = (0..spec.rows)
            .map(|_| {
                refs.iter()
                    .map(|(name, _)| {
                        let bound = if name.starts_with('k') {
                            spec.key_domain
                        } else {
                            spec.payload_domain
                        };
                        Value::Int(g.u64_below(bound) as i64)
                    })
                    .collect()
            })
            .collect();
        let rel = Relation::build(Schema::new(&refs), rows)
            .expect("generated rows match the generated schema")
            .distinct();
        catalog.insert(format!("t{i}"), rel);
    }
    Federation { catalog }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federations_are_deterministic_per_case() {
        let spec = FederationSpec::default();
        let a = chain(&mut Gen::for_case("fed", 5), &spec);
        let b = chain(&mut Gen::for_case("fed", 5), &spec);
        for (name, rel) in &a.catalog {
            assert_eq!(rel.tuples(), b.catalog[name].tuples(), "{name}");
        }
        let c = chain(&mut Gen::for_case("fed", 6), &spec);
        assert_ne!(
            a.catalog["t0"].tuples(),
            c.catalog["t0"].tuples(),
            "different cases diverge"
        );
    }

    #[test]
    fn chain_schemas_share_one_key_per_adjacent_pair() {
        let fed = chain(
            &mut Gen::for_case("fed-schema", 0),
            &FederationSpec {
                tables: 4,
                ..Default::default()
            },
        );
        assert_eq!(fed.catalog.len(), 4);
        for i in 1..4usize {
            let prev = fed.catalog[&format!("t{}", i - 1)].schema().attr_names();
            let cur = fed.catalog[&format!("t{i}")].schema().attr_names();
            let shared: Vec<_> = prev.iter().filter(|a| cur.contains(a)).collect();
            assert_eq!(shared, vec![&format!("k{}", i - 1).as_str()].as_slice());
        }
    }

    #[test]
    fn query_parses_and_selectivity_follows_the_domain() {
        // A narrow key domain joins densely; a huge one sparsely.
        let dense_spec = FederationSpec {
            key_domain: 4,
            ..Default::default()
        };
        let sparse_spec = FederationSpec {
            key_domain: 1_000_000,
            ..Default::default()
        };
        let dense = chain(&mut Gen::for_case("fed-sel", 0), &dense_spec);
        let sparse = chain(&mut Gen::for_case("fed-sel", 0), &sparse_spec);
        let catalog = |f: &Federation| {
            f.catalog
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect::<std::collections::HashMap<_, _>>()
        };
        let dense_rows = relalg::sql::parse(&dense.query())
            .unwrap()
            .eval(&catalog(&dense))
            .unwrap()
            .len();
        let sparse_rows = relalg::sql::parse(&sparse.query())
            .unwrap()
            .eval(&catalog(&sparse))
            .unwrap()
            .len();
        assert!(dense_rows > 0, "narrow domains must actually join");
        assert!(
            dense_rows > sparse_rows,
            "selectivity knob had no effect: {dense_rows} vs {sparse_rows}"
        );
    }
}
