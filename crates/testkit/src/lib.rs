#![forbid(unsafe_code)]

//! Seeded property-testing toolkit.
//!
//! A tiny, fully offline replacement for a property-testing framework: a
//! deterministic generator ([`Gen`]) driven by the workspace HMAC-DRBG, and
//! a case runner ([`cases`]) that executes a property over many generated
//! inputs and, on failure, reports the property label and the failing case
//! index so the exact input can be regenerated.
//!
//! Determinism is the point: every case derives its seed from the property
//! label and case index alone, so failures reproduce across machines and
//! runs without shrinking databases or environment variables.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mpint::rng::Rng;
use secmed_crypto::drbg::HmacDrbg;

pub mod chaos;
pub mod federation;

/// A deterministic value generator for property tests.
///
/// Wraps an [`HmacDrbg`] seeded from a label and case index, and offers the
/// sampling helpers the test-suites need.  All methods consume generator
/// state, so the sequence of calls fully determines the values drawn.
pub struct Gen {
    rng: HmacDrbg,
}

impl Gen {
    /// A generator for `case` of the property named `label`.
    pub fn for_case(label: &str, case: u64) -> Self {
        Gen {
            rng: HmacDrbg::new(format!("testkit/{label}/{case}").as_bytes()),
        }
    }

    /// Direct access to the underlying DRBG (for APIs that take
    /// `&mut dyn Rng`).
    pub fn rng(&mut self) -> &mut HmacDrbg {
        &mut self.rng
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// A uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.rng.fill_bytes(&mut b);
        b[0]
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.u8() & 1 == 1
    }

    /// A uniform `i64` over the full range.
    pub fn i64(&mut self) -> i64 {
        self.u64() as i64
    }

    /// A uniform `u64` in `[0, bound)`.  `bound` must be non-zero.
    ///
    /// Uses rejection sampling from the top of the range, so the result is
    /// exactly uniform (no modulo bias).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform per-mille rate in `[0, max]` (inclusive, `max` ≤ 1000) —
    /// the unit fault-plan probabilities are expressed in.  Chaos suites
    /// draw each fault kind's rate with this so a plan's rates stay
    /// individually bounded and jointly below the 1000‰ budget.
    pub fn per_mille(&mut self, max: u16) -> u16 {
        assert!(max <= 1000, "per_mille: max above 1000‰");
        self.u64_below(u64::from(max) + 1) as u16
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "usize_in: empty range");
        lo + self.u64_below((hi - lo + 1) as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi]` (inclusive).
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range");
        let width = (hi as i128 - lo as i128 + 1) as u128;
        let off = if width > u64::MAX as u128 {
            // Full (or near-full) range: a raw draw is already uniform.
            return self.i64();
        } else {
            self.u64_below(width as u64)
        };
        (lo as i128 + off as i128) as i64
    }

    /// `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A byte vector with length drawn uniformly from `[min_len, max_len]`.
    pub fn bytes_in(&mut self, min_len: usize, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(min_len, max_len);
        self.bytes(len)
    }

    /// A reference to a uniformly chosen element of `options`.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "choose from empty slice");
        &options[self.usize_in(0, options.len() - 1)]
    }

    /// A string of length `[min_len, max_len]` over `alphabet` (chars drawn
    /// uniformly with replacement).
    pub fn string_from(&mut self, alphabet: &[char], min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| *self.choose(alphabet)).collect()
    }

    /// A vector of `n` values produced by `f`.
    pub fn vec_of<T>(&mut self, n: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `property` over `n` generated cases.
///
/// Each case gets a fresh [`Gen`] derived from `label` and the case index.
/// If the property panics, the panic is re-raised with the label and case
/// index attached (the original assertion message is printed by the default
/// panic hook before the re-raise).
pub fn cases(n: u64, label: &str, mut property: impl FnMut(&mut Gen)) {
    for case in 0..n {
        let mut g = Gen::for_case(label, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| property(&mut g)));
        if outcome.is_err() {
            panic!("property '{label}' failed at case {case}/{n} (seed label \"testkit/{label}/{case}\")");
        }
    }
}

/// The default number of cases per property, mirroring the count the suite
/// ran under its previous property-testing framework.
pub const DEFAULT_CASES: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_case() {
        let mut a = Gen::for_case("det", 3);
        let mut b = Gen::for_case("det", 3);
        assert_eq!(a.u64(), b.u64());
        assert_eq!(a.bytes(17), b.bytes(17));
    }

    #[test]
    fn cases_diverge() {
        let mut a = Gen::for_case("div", 0);
        let mut b = Gen::for_case("div", 1);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn labels_diverge() {
        let mut a = Gen::for_case("label-a", 0);
        let mut b = Gen::for_case("label-b", 0);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn u64_below_respects_bound() {
        let mut g = Gen::for_case("bound", 0);
        for _ in 0..200 {
            assert!(g.u64_below(7) < 7);
        }
    }

    #[test]
    fn ranges_are_inclusive() {
        let mut g = Gen::for_case("range", 0);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = g.i64_in(-2, 2);
            assert!((-2..=2).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 5, "all values of a small range appear");
        for _ in 0..100 {
            let v = g.usize_in(3, 3);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn per_mille_stays_in_range_and_reaches_the_edges() {
        let mut g = Gen::for_case("per-mille", 0);
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..500 {
            let v = g.per_mille(5);
            assert!(v <= 5);
            saw_zero |= v == 0;
            saw_max |= v == 5;
        }
        assert!(saw_zero && saw_max, "both endpoints of [0, max] appear");
        for _ in 0..50 {
            assert!(g.per_mille(1000) <= 1000);
        }
        assert_eq!(g.per_mille(0), 0);
    }

    #[test]
    fn full_i64_range_supported() {
        let mut g = Gen::for_case("full", 0);
        // Must not panic or loop.
        let _ = g.i64_in(i64::MIN, i64::MAX);
    }

    #[test]
    fn string_alphabet_respected() {
        let mut g = Gen::for_case("str", 0);
        let alphabet: Vec<char> = "abcü€".chars().collect();
        let s = g.string_from(&alphabet, 0, 24);
        assert!(s.chars().all(|c| alphabet.contains(&c)));
        assert!(s.chars().count() <= 24);
    }

    #[test]
    fn cases_runs_every_case() {
        let mut count = 0u64;
        cases(25, "count", |_| count += 1);
        assert_eq!(count, 25);
    }

    #[test]
    fn failing_case_is_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            cases(10, "fails", |g| {
                let v = g.u64_below(10);
                assert!(v < 10, "always true");
            });
        }));
        assert!(result.is_ok());

        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut i = 0;
            cases(10, "fails-at-4", |_| {
                assert_ne!(i, 4, "boom");
                i += 1;
            });
        }));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("fails-at-4"), "{msg}");
        assert!(msg.contains("case 4"), "{msg}");
    }
}
