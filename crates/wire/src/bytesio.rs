//! Bounds-checked big-endian writer/reader used by the frame codec.
//!
//! The reader never indexes past its input: every accessor returns
//! [`WireError::Truncated`] instead.  Element counts are length prefixes
//! claimed by the input, so pre-allocations are capped — a hostile prefix
//! cannot force a large allocation before the (short) input runs out.

use mpint::Natural;

use crate::WireError;

/// Largest pre-allocation honoured for a claimed element count.
const MAX_PREALLOC: usize = 4096;

/// Converts an in-memory length to a `u32` prefix.  Saturates at
/// `u32::MAX`, which no well-formed body can satisfy, so an (impossible in
/// practice) > 4 GiB field fails loudly at decode instead of misparsing.
pub(crate) fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// A capped capacity for `Vec::with_capacity` from an untrusted count.
pub(crate) fn cap(count: u32) -> usize {
    (count as usize).min(MAX_PREALLOC)
}

#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u32` length prefix followed by the raw bytes.
    pub(crate) fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(len_u32(v.len()));
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a magnitude as its minimal big-endian byte string.
    pub(crate) fn put_nat(&mut self, v: &Natural) {
        self.put_bytes(&v.to_bytes_be());
    }
}

pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.data.len() {
            return Err(WireError::Truncated);
        }
        let slice = self.data.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Advances past `n` bytes without interpreting them (header re-skip
    /// after a [`peek`](crate::Frame::peek_header)-style parse).
    pub(crate) fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.take(n).map(|_| ())
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(WireError::Truncated)
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_be_bytes(arr))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_be_bytes(arr))
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub(crate) fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    pub(crate) fn get_str(&mut self) -> Result<String, WireError> {
        let raw = self.get_bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| WireError::Malformed("string is not UTF-8"))
    }

    pub(crate) fn get_nat(&mut self) -> Result<Natural, WireError> {
        Ok(Natural::from_bytes_be(self.get_bytes()?))
    }

    /// Fails with [`WireError::TrailingBytes`] unless the input was
    /// consumed exactly.
    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(42);
        w.put_bytes(b"abc");
        w.put_str("héllo");
        w.put_nat(&Natural::from(123_456u64));
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_nat().unwrap(), Natural::from(123_456u64));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_bytes(b"abcdef");
        let buf = w.into_vec();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert_eq!(r.get_bytes().unwrap_err(), WireError::Truncated);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.put_u8(1);
        let mut buf = w.into_vec();
        buf.push(0xFF);
        let mut r = Reader::new(&buf);
        r.get_u8().unwrap();
        assert_eq!(r.finish().unwrap_err(), WireError::TrailingBytes);
    }

    #[test]
    fn oversized_length_prefix_is_truncated_error() {
        let mut r = Reader::new(&[0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3]);
        assert_eq!(r.get_bytes().unwrap_err(), WireError::Truncated);
    }
}
