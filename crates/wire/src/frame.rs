//! Typed frames for every cross-party message of Listings 1–4.
//!
//! One [`Frame`] variant exists per message shape; the kind byte in the
//! header selects the variant.  Embedded ciphertexts reuse their own
//! canonical codecs ([`HybridCiphertext::encode`], [`IndexTable::encode`],
//! [`SessionCiphertext::encode`]); bare group/ring elements (SRA values,
//! Paillier ciphertexts) travel as minimal big-endian magnitudes and are
//! re-validated by the receiving party when it rebuilds typed ciphertexts.

use mpint::Natural;
use secmed_crypto::hybrid::SessionCiphertext;
use secmed_crypto::HybridCiphertext;
use secmed_das::{DasRow, IndexTable, IndexValue};

use crate::bytesio::{cap, len_u32, Reader, Writer};
use crate::{WireError, WIRE_MAGIC, WIRE_VERSION};

/// The index-table part of a `R^S` transfer: encrypted toward the client
/// (client setting) or plaintext for the mediator (mediator setting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DasTable {
    /// Hybrid-encrypted `IndexTable::encode()` bytes — only the client can
    /// open them (Listing 2, client setting).
    Encrypted(HybridCiphertext),
    /// The plaintext index table itself (Listing 2, mediator setting).
    Plain(IndexTable),
}

/// How a commutative-protocol message refers to the tuple ciphertext that
/// rides with a hashed join value (Listing 3, footnote 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleRef {
    /// The tuple ciphertext itself is echoed through the opposite source.
    Echo(HybridCiphertext),
    /// A positional reference into the sender's original value set; the
    /// mediator resolves it against the set it already holds.
    Id(u64),
}

/// Encrypted polynomial coefficients (Listing 4): either one flat
/// coefficient vector or the bucketed variant's per-bucket vectors.  Each
/// magnitude is a Paillier ciphertext element in `Z_{n^2}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyCoeffs {
    /// Coefficients of a single polynomial, constant term first.
    Flat(Vec<Natural>),
    /// One coefficient vector per hash bucket.
    Bucketed(Vec<Vec<Natural>>),
}

/// The server's verdict on a [`Frame::Hello`], carried in
/// [`Frame::HelloAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session is open; subsequent frames must carry its id.
    Accepted,
    /// The client spoke a wire version the server does not; the payload
    /// is the version the server would have accepted.
    VersionMismatch(u8),
    /// The proposed session id is already live on this server.
    DuplicateSession,
    /// The server is at its admission limit (or draining toward
    /// shutdown) and refuses new sessions.  Retryable: the client may
    /// back off and dial again.
    ServerBusy,
}

/// The server's verdict on a [`Frame::Resume`], carried in
/// [`Frame::ResumeAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeStatus {
    /// The parked session was adopted; the body carries the server's
    /// next expected request sequence number, and echoes for every
    /// sequence the client is missing are replayed immediately after
    /// this ack.
    Resumed,
    /// The server holds no session (live or parked) under this id — it
    /// was never opened, already finished, or was reaped past its idle
    /// deadline.
    UnknownSession,
    /// The session is still attached to a live connection.  Transient:
    /// the server may not yet have noticed the old connection die, so a
    /// client should back off and retry.
    SessionLive,
    /// The client's `next_seq` has fallen out of the server's bounded
    /// replay window; the gap can no longer be replayed.
    ReplayGone,
}

/// The fixed-size header of an encoded frame, parsed without touching the
/// body.  A relay (the server's per-connection loop) uses this to route on
/// the session id and account bytes without running ciphertext codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The wire version byte.
    pub version: u8,
    /// The kind byte (one tag per [`Frame`] variant).
    pub kind: u8,
    /// The session id threaded onto the frame (0 for in-process runs).
    pub session: u64,
    /// The declared body length in bytes.
    pub body_len: u32,
}

/// One side's evaluated-polynomial payload (Listing 4 steps 5–7):
/// Paillier ciphertext elements plus the session-key table (empty in
/// inline-payload mode, footnote 2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PmPayloadSet {
    /// Paillier ciphertext elements, one per evaluated domain value.
    pub evals: Vec<Natural>,
    /// `(session id, encrypted tuple)` rows, sorted by id.
    pub table: Vec<(u64, SessionCiphertext)>,
}

/// Every message that crosses a party boundary, as a typed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Listing 1 step 1: the client's query plus its credential set.
    /// Credentials are opaque `Credential::encode()` bytes — the wire
    /// layer does not interpret them.
    Query {
        /// The SQL text of the join query.
        sql: String,
        /// Encoded credentials, in client order.
        credentials: Vec<Vec<u8>>,
    },
    /// Listing 1 step 3: a partial query for one source, the credential
    /// subset forwarded with it, and the join attributes of the plan.
    PartialQuery {
        /// The partial query's SQL text.
        sql: String,
        /// Encoded forwarded credentials.
        credentials: Vec<Vec<u8>>,
        /// Join attribute names, in plan order.
        join_attrs: Vec<String>,
    },
    /// Listing 2 step 3: an encrypted partial result `R^S` — rows of
    /// `⟨etuple, index⟩` plus the index table (encrypted or plaintext
    /// depending on the setting).
    DasRelation {
        /// The encrypted rows.
        rows: Vec<DasRow>,
        /// The index table accompanying the relation.
        table: DasTable,
    },
    /// Listing 2 step 4 (client setting): the encrypted index tables
    /// forwarded from the mediator to the client.
    DasIndexTables {
        /// One encrypted `IndexTable::encode()` blob per source.
        tables: Vec<HybridCiphertext>,
    },
    /// Listing 2 step 5 (client setting): the translated server query — a
    /// disjunction of index-value pairs.
    DasServerQuery {
        /// Admitted `(left index, right index)` pairs.
        pairs: Vec<(IndexValue, IndexValue)>,
    },
    /// Listing 2 step 6: the coarse result set `R_C` of candidate row
    /// pairs, still encrypted toward the client.
    DasCandidates {
        /// Candidate `(left row, right row)` pairs.
        pairs: Vec<(DasRow, DasRow)>,
    },
    /// Listing 3 step 3: a source's singly-encrypted value set, each hash
    /// paired with its hybrid-encrypted tuple.
    CommutativeSet {
        /// `(f_e(h(a)), encrypt(tuple))`, sorted by encrypted hash.
        items: Vec<(Natural, HybridCiphertext)>,
    },
    /// Listing 3 step 4: the opposite source's set crossing over for the
    /// second encryption, tuples echoed or referenced by id (footnote 1).
    CommutativeCross {
        /// `(f_e(h(a)), tuple ref)` in the original set order.
        items: Vec<(Natural, TupleRef)>,
    },
    /// Listing 3 step 5: the doubly-encrypted set coming back, each value
    /// still carrying its tuple reference.
    CommutativeDoubled {
        /// `(f_e1(f_e2(h(a))), tuple ref)` in the crossed set's order.
        items: Vec<(Natural, TupleRef)>,
    },
    /// Listing 3 step 7: matched ciphertext pairs delivered to the client.
    ResultPairs {
        /// `(left tuple ct, right tuple ct)` per matched join value.
        pairs: Vec<(HybridCiphertext, HybridCiphertext)>,
    },
    /// Listing 4 steps 2–4: an encrypted polynomial in transit (source to
    /// mediator, then mediator to the opposite source).
    PmPolynomial {
        /// The encrypted coefficients.
        poly: PolyCoeffs,
    },
    /// Listing 4 steps 5–6: one source's evaluated payload set returning
    /// to the mediator.
    PmEvaluations {
        /// The evaluations and (optionally) the session-key table.
        payload: PmPayloadSet,
    },
    /// Listing 4 step 7: both sides' payloads delivered to the client.
    PmDelivery {
        /// The left source's payload set.
        left: PmPayloadSet,
        /// The right source's payload set.
        right: PmPayloadSet,
    },
    /// Session open: the first frame on a new connection.  The header's
    /// session field carries the proposed session id; the body carries the
    /// client's wire version and its requested per-connection delivery
    /// policy (retry budget + exhaustion behavior).
    Hello {
        /// The wire version the client speaks.
        client_version: u8,
        /// Requested retry budget per delivery (0 = server default).
        max_attempts: u32,
        /// Whether exhausted deliveries should degrade instead of abort.
        degrade_on_exhausted: bool,
    },
    /// Session open verdict, echoing the proposed session id in the
    /// header.  Anything but [`SessionStatus::Accepted`] closes the
    /// connection.
    HelloAck {
        /// The server's verdict.
        status: SessionStatus,
    },
    /// Session resume: the first frame on a redial after a connection
    /// died mid-session.  The header's session field names the parked
    /// session; the body carries the sequence number of the first
    /// request blob whose echo the client has not received.
    Resume {
        /// The client's next unacknowledged frame sequence number.
        next_seq: u64,
    },
    /// Resume verdict, echoing the session id in the header.  On
    /// [`ResumeStatus::Resumed`] the server immediately replays the
    /// echoes for sequences in `[client next_seq, server_next_seq)` and
    /// the relay continues; any other status closes the connection.
    ResumeAck {
        /// The server's verdict.
        status: ResumeStatus,
        /// The server's next expected request sequence number (0 when
        /// the resume was refused).
        server_next_seq: u64,
    },
    /// Clean session close; the server reclaims the session table entry
    /// and marks the run complete.
    Goodbye,
}

const KIND_QUERY: u8 = 0x01;
const KIND_PARTIAL_QUERY: u8 = 0x02;
const KIND_DAS_RELATION: u8 = 0x10;
const KIND_DAS_INDEX_TABLES: u8 = 0x11;
const KIND_DAS_SERVER_QUERY: u8 = 0x12;
const KIND_DAS_CANDIDATES: u8 = 0x13;
const KIND_COMM_SET: u8 = 0x20;
const KIND_COMM_CROSS: u8 = 0x21;
const KIND_COMM_DOUBLED: u8 = 0x22;
const KIND_RESULT_PAIRS: u8 = 0x23;
const KIND_PM_POLYNOMIAL: u8 = 0x30;
const KIND_PM_EVALUATIONS: u8 = 0x31;
const KIND_PM_DELIVERY: u8 = 0x32;
const KIND_HELLO: u8 = 0x40;
const KIND_HELLO_ACK: u8 = 0x41;
const KIND_GOODBYE: u8 = 0x42;
const KIND_RESUME: u8 = 0x43;
const KIND_RESUME_ACK: u8 = 0x44;

const TAG_TABLE_ENCRYPTED: u8 = 0x01;
const TAG_TABLE_PLAIN: u8 = 0x02;
const TAG_REF_ECHO: u8 = 0x01;
const TAG_REF_ID: u8 = 0x02;
const TAG_POLY_FLAT: u8 = 0x01;
const TAG_POLY_BUCKETED: u8 = 0x02;
const TAG_STATUS_ACCEPTED: u8 = 0x01;
const TAG_STATUS_VERSION_MISMATCH: u8 = 0x02;
const TAG_STATUS_DUPLICATE_SESSION: u8 = 0x03;
const TAG_STATUS_SERVER_BUSY: u8 = 0x04;
const TAG_RESUME_RESUMED: u8 = 0x01;
const TAG_RESUME_UNKNOWN_SESSION: u8 = 0x02;
const TAG_RESUME_SESSION_LIVE: u8 = 0x03;
const TAG_RESUME_REPLAY_GONE: u8 = 0x04;

/// The fixed header length in bytes: magic(2) version(1) kind(1)
/// session(8) len(4).
pub(crate) const HEADER_LEN: usize = 16;

impl Frame {
    /// The kind byte written into this frame's header.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Query { .. } => KIND_QUERY,
            Frame::PartialQuery { .. } => KIND_PARTIAL_QUERY,
            Frame::DasRelation { .. } => KIND_DAS_RELATION,
            Frame::DasIndexTables { .. } => KIND_DAS_INDEX_TABLES,
            Frame::DasServerQuery { .. } => KIND_DAS_SERVER_QUERY,
            Frame::DasCandidates { .. } => KIND_DAS_CANDIDATES,
            Frame::CommutativeSet { .. } => KIND_COMM_SET,
            Frame::CommutativeCross { .. } => KIND_COMM_CROSS,
            Frame::CommutativeDoubled { .. } => KIND_COMM_DOUBLED,
            Frame::ResultPairs { .. } => KIND_RESULT_PAIRS,
            Frame::PmPolynomial { .. } => KIND_PM_POLYNOMIAL,
            Frame::PmEvaluations { .. } => KIND_PM_EVALUATIONS,
            Frame::PmDelivery { .. } => KIND_PM_DELIVERY,
            Frame::Hello { .. } => KIND_HELLO,
            Frame::HelloAck { .. } => KIND_HELLO_ACK,
            Frame::Goodbye => KIND_GOODBYE,
            Frame::Resume { .. } => KIND_RESUME,
            Frame::ResumeAck { .. } => KIND_RESUME_ACK,
        }
    }

    /// A short stable name for diagnostics and vector fixtures.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Query { .. } => "query",
            Frame::PartialQuery { .. } => "partial_query",
            Frame::DasRelation { .. } => "das_relation",
            Frame::DasIndexTables { .. } => "das_index_tables",
            Frame::DasServerQuery { .. } => "das_server_query",
            Frame::DasCandidates { .. } => "das_candidates",
            Frame::CommutativeSet { .. } => "commutative_set",
            Frame::CommutativeCross { .. } => "commutative_cross",
            Frame::CommutativeDoubled { .. } => "commutative_doubled",
            Frame::ResultPairs { .. } => "result_pairs",
            Frame::PmPolynomial { .. } => "pm_polynomial",
            Frame::PmEvaluations { .. } => "pm_evaluations",
            Frame::PmDelivery { .. } => "pm_delivery",
            Frame::Hello { .. } => "hello",
            Frame::HelloAck { .. } => "hello_ack",
            Frame::Goodbye => "goodbye",
            Frame::Resume { .. } => "resume",
            Frame::ResumeAck { .. } => "resume_ack",
        }
    }

    /// Encodes the frame with session id 0 (the in-process convention).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_session(0)
    }

    /// Encodes the frame with the given session id threaded into the
    /// header.
    pub fn encode_with_session(&self, session: u64) -> Vec<u8> {
        let mut body = Writer::new();
        self.encode_body(&mut body);
        let body = body.into_vec();
        let mut out = Vec::with_capacity(body.len() + HEADER_LEN);
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&session.to_be_bytes());
        out.extend_from_slice(&len_u32(body.len()).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parses and validates only the fixed-size header: magic, version and
    /// declared length are checked; the kind byte and body are not.  A
    /// relay uses this to route on the session id without running
    /// ciphertext codecs.
    pub fn peek_header(bytes: &[u8]) -> Result<FrameHeader, WireError> {
        let mut r = Reader::new(bytes);
        let m0 = r.get_u8()?;
        let m1 = r.get_u8()?;
        if [m0, m1] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.get_u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = r.get_u8()?;
        let session = r.get_u64()?;
        let body_len = r.get_u32()?;
        match bytes.len().checked_sub(HEADER_LEN) {
            Some(rest) if rest == body_len as usize => {}
            Some(rest) if rest < body_len as usize => return Err(WireError::Truncated),
            _ => return Err(WireError::TrailingBytes),
        }
        Ok(FrameHeader {
            version,
            kind,
            session,
            body_len,
        })
    }

    /// Decodes a frame, validating the header, the body grammar and every
    /// embedded ciphertext codec.  Total: returns `Err` on any malformed
    /// input, never panics.  The header's session id is ignored; use
    /// [`Frame::decode_with_session`] to recover it.
    pub fn decode(bytes: &[u8]) -> Result<Frame, WireError> {
        Frame::decode_with_session(bytes).map(|(_, frame)| frame)
    }

    /// Decodes a frame, additionally requiring the header's session id to
    /// match an established session.  A mismatch is the typed
    /// [`WireError::UnknownSession`] carrying the id the frame named.
    pub fn decode_expecting_session(bytes: &[u8], session: u64) -> Result<Frame, WireError> {
        let (got, frame) = Frame::decode_with_session(bytes)?;
        if got != session {
            return Err(WireError::UnknownSession(got));
        }
        Ok(frame)
    }

    /// Decodes a frame together with the session id from its header.
    pub fn decode_with_session(bytes: &[u8]) -> Result<(u64, Frame), WireError> {
        let header = Frame::peek_header(bytes)?;
        let mut r = Reader::new(bytes);
        r.skip(HEADER_LEN)?;
        let frame = Frame::decode_body(header.kind, &mut r)?;
        r.finish()?;
        Ok((header.session, frame))
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Frame::Query { sql, credentials } => {
                w.put_str(sql);
                w.put_u32(len_u32(credentials.len()));
                for c in credentials {
                    w.put_bytes(c);
                }
            }
            Frame::PartialQuery {
                sql,
                credentials,
                join_attrs,
            } => {
                w.put_str(sql);
                w.put_u32(len_u32(credentials.len()));
                for c in credentials {
                    w.put_bytes(c);
                }
                w.put_u32(len_u32(join_attrs.len()));
                for a in join_attrs {
                    w.put_str(a);
                }
            }
            Frame::DasRelation { rows, table } => {
                w.put_u32(len_u32(rows.len()));
                for row in rows {
                    w.put_bytes(&row.etuple.encode());
                    w.put_u64(row.index.0);
                }
                match table {
                    DasTable::Encrypted(ct) => {
                        w.put_u8(TAG_TABLE_ENCRYPTED);
                        w.put_bytes(&ct.encode());
                    }
                    DasTable::Plain(t) => {
                        w.put_u8(TAG_TABLE_PLAIN);
                        w.put_bytes(&t.encode());
                    }
                }
            }
            Frame::DasIndexTables { tables } => {
                w.put_u32(len_u32(tables.len()));
                for ct in tables {
                    w.put_bytes(&ct.encode());
                }
            }
            Frame::DasServerQuery { pairs } => {
                w.put_u32(len_u32(pairs.len()));
                for (l, r) in pairs {
                    w.put_u64(l.0);
                    w.put_u64(r.0);
                }
            }
            Frame::DasCandidates { pairs } => {
                w.put_u32(len_u32(pairs.len()));
                for (l, r) in pairs {
                    w.put_bytes(&l.etuple.encode());
                    w.put_u64(l.index.0);
                    w.put_bytes(&r.etuple.encode());
                    w.put_u64(r.index.0);
                }
            }
            Frame::CommutativeSet { items } => {
                w.put_u32(len_u32(items.len()));
                for (v, ct) in items {
                    w.put_nat(v);
                    w.put_bytes(&ct.encode());
                }
            }
            Frame::CommutativeCross { items } | Frame::CommutativeDoubled { items } => {
                w.put_u32(len_u32(items.len()));
                for (v, tr) in items {
                    w.put_nat(v);
                    match tr {
                        TupleRef::Echo(ct) => {
                            w.put_u8(TAG_REF_ECHO);
                            w.put_bytes(&ct.encode());
                        }
                        TupleRef::Id(id) => {
                            w.put_u8(TAG_REF_ID);
                            w.put_u64(*id);
                        }
                    }
                }
            }
            Frame::ResultPairs { pairs } => {
                w.put_u32(len_u32(pairs.len()));
                for (l, r) in pairs {
                    w.put_bytes(&l.encode());
                    w.put_bytes(&r.encode());
                }
            }
            Frame::PmPolynomial { poly } => match poly {
                PolyCoeffs::Flat(coeffs) => {
                    w.put_u8(TAG_POLY_FLAT);
                    w.put_u32(len_u32(coeffs.len()));
                    for c in coeffs {
                        w.put_nat(c);
                    }
                }
                PolyCoeffs::Bucketed(buckets) => {
                    w.put_u8(TAG_POLY_BUCKETED);
                    w.put_u32(len_u32(buckets.len()));
                    for bucket in buckets {
                        w.put_u32(len_u32(bucket.len()));
                        for c in bucket {
                            w.put_nat(c);
                        }
                    }
                }
            },
            Frame::PmEvaluations { payload } => {
                encode_payload_set(w, payload);
            }
            Frame::PmDelivery { left, right } => {
                encode_payload_set(w, left);
                encode_payload_set(w, right);
            }
            Frame::Hello {
                client_version,
                max_attempts,
                degrade_on_exhausted,
            } => {
                w.put_u8(*client_version);
                w.put_u32(*max_attempts);
                w.put_u8(u8::from(*degrade_on_exhausted));
            }
            Frame::HelloAck { status } => match status {
                SessionStatus::Accepted => w.put_u8(TAG_STATUS_ACCEPTED),
                SessionStatus::VersionMismatch(server) => {
                    w.put_u8(TAG_STATUS_VERSION_MISMATCH);
                    w.put_u8(*server);
                }
                SessionStatus::DuplicateSession => w.put_u8(TAG_STATUS_DUPLICATE_SESSION),
                SessionStatus::ServerBusy => w.put_u8(TAG_STATUS_SERVER_BUSY),
            },
            Frame::Resume { next_seq } => {
                w.put_u64(*next_seq);
            }
            Frame::ResumeAck {
                status,
                server_next_seq,
            } => {
                w.put_u8(match status {
                    ResumeStatus::Resumed => TAG_RESUME_RESUMED,
                    ResumeStatus::UnknownSession => TAG_RESUME_UNKNOWN_SESSION,
                    ResumeStatus::SessionLive => TAG_RESUME_SESSION_LIVE,
                    ResumeStatus::ReplayGone => TAG_RESUME_REPLAY_GONE,
                });
                w.put_u64(*server_next_seq);
            }
            Frame::Goodbye => {}
        }
    }

    fn decode_body(kind: u8, r: &mut Reader<'_>) -> Result<Frame, WireError> {
        match kind {
            KIND_QUERY => {
                let sql = r.get_str()?;
                let credentials = decode_byte_vecs(r)?;
                Ok(Frame::Query { sql, credentials })
            }
            KIND_PARTIAL_QUERY => {
                let sql = r.get_str()?;
                let credentials = decode_byte_vecs(r)?;
                let n = r.get_u32()?;
                let mut join_attrs = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    join_attrs.push(r.get_str()?);
                }
                Ok(Frame::PartialQuery {
                    sql,
                    credentials,
                    join_attrs,
                })
            }
            KIND_DAS_RELATION => {
                let n = r.get_u32()?;
                let mut rows = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    rows.push(decode_das_row(r)?);
                }
                let table = match r.get_u8()? {
                    TAG_TABLE_ENCRYPTED => {
                        DasTable::Encrypted(HybridCiphertext::decode(r.get_bytes()?)?)
                    }
                    TAG_TABLE_PLAIN => DasTable::Plain(IndexTable::decode(r.get_bytes()?)?),
                    _ => return Err(WireError::Malformed("unknown index-table tag")),
                };
                Ok(Frame::DasRelation { rows, table })
            }
            KIND_DAS_INDEX_TABLES => {
                let n = r.get_u32()?;
                let mut tables = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    tables.push(HybridCiphertext::decode(r.get_bytes()?)?);
                }
                Ok(Frame::DasIndexTables { tables })
            }
            KIND_DAS_SERVER_QUERY => {
                let n = r.get_u32()?;
                let mut pairs = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    let l = IndexValue(r.get_u64()?);
                    let rt = IndexValue(r.get_u64()?);
                    pairs.push((l, rt));
                }
                Ok(Frame::DasServerQuery { pairs })
            }
            KIND_DAS_CANDIDATES => {
                let n = r.get_u32()?;
                let mut pairs = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    let l = decode_das_row(r)?;
                    let rt = decode_das_row(r)?;
                    pairs.push((l, rt));
                }
                Ok(Frame::DasCandidates { pairs })
            }
            KIND_COMM_SET => {
                let n = r.get_u32()?;
                let mut items = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    let v = r.get_nat()?;
                    let ct = HybridCiphertext::decode(r.get_bytes()?)?;
                    items.push((v, ct));
                }
                Ok(Frame::CommutativeSet { items })
            }
            KIND_COMM_CROSS | KIND_COMM_DOUBLED => {
                let n = r.get_u32()?;
                let mut items = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    let v = r.get_nat()?;
                    let tr = match r.get_u8()? {
                        TAG_REF_ECHO => TupleRef::Echo(HybridCiphertext::decode(r.get_bytes()?)?),
                        TAG_REF_ID => TupleRef::Id(r.get_u64()?),
                        _ => return Err(WireError::Malformed("unknown tuple-ref tag")),
                    };
                    items.push((v, tr));
                }
                if kind == KIND_COMM_CROSS {
                    Ok(Frame::CommutativeCross { items })
                } else {
                    Ok(Frame::CommutativeDoubled { items })
                }
            }
            KIND_RESULT_PAIRS => {
                let n = r.get_u32()?;
                let mut pairs = Vec::with_capacity(cap(n));
                for _ in 0..n {
                    let l = HybridCiphertext::decode(r.get_bytes()?)?;
                    let rt = HybridCiphertext::decode(r.get_bytes()?)?;
                    pairs.push((l, rt));
                }
                Ok(Frame::ResultPairs { pairs })
            }
            KIND_PM_POLYNOMIAL => {
                let poly = match r.get_u8()? {
                    TAG_POLY_FLAT => {
                        let n = r.get_u32()?;
                        let mut coeffs = Vec::with_capacity(cap(n));
                        for _ in 0..n {
                            coeffs.push(r.get_nat()?);
                        }
                        PolyCoeffs::Flat(coeffs)
                    }
                    TAG_POLY_BUCKETED => {
                        let n = r.get_u32()?;
                        let mut buckets = Vec::with_capacity(cap(n));
                        for _ in 0..n {
                            let k = r.get_u32()?;
                            let mut bucket = Vec::with_capacity(cap(k));
                            for _ in 0..k {
                                bucket.push(r.get_nat()?);
                            }
                            buckets.push(bucket);
                        }
                        PolyCoeffs::Bucketed(buckets)
                    }
                    _ => return Err(WireError::Malformed("unknown polynomial tag")),
                };
                Ok(Frame::PmPolynomial { poly })
            }
            KIND_PM_EVALUATIONS => {
                let payload = decode_payload_set(r)?;
                Ok(Frame::PmEvaluations { payload })
            }
            KIND_PM_DELIVERY => {
                let left = decode_payload_set(r)?;
                let right = decode_payload_set(r)?;
                Ok(Frame::PmDelivery { left, right })
            }
            KIND_HELLO => {
                let client_version = r.get_u8()?;
                let max_attempts = r.get_u32()?;
                let degrade_on_exhausted = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("bad degrade flag")),
                };
                Ok(Frame::Hello {
                    client_version,
                    max_attempts,
                    degrade_on_exhausted,
                })
            }
            KIND_HELLO_ACK => {
                let status = match r.get_u8()? {
                    TAG_STATUS_ACCEPTED => SessionStatus::Accepted,
                    TAG_STATUS_VERSION_MISMATCH => SessionStatus::VersionMismatch(r.get_u8()?),
                    TAG_STATUS_DUPLICATE_SESSION => SessionStatus::DuplicateSession,
                    TAG_STATUS_SERVER_BUSY => SessionStatus::ServerBusy,
                    _ => return Err(WireError::Malformed("unknown session-status tag")),
                };
                Ok(Frame::HelloAck { status })
            }
            KIND_RESUME => Ok(Frame::Resume {
                next_seq: r.get_u64()?,
            }),
            KIND_RESUME_ACK => {
                let status = match r.get_u8()? {
                    TAG_RESUME_RESUMED => ResumeStatus::Resumed,
                    TAG_RESUME_UNKNOWN_SESSION => ResumeStatus::UnknownSession,
                    TAG_RESUME_SESSION_LIVE => ResumeStatus::SessionLive,
                    TAG_RESUME_REPLAY_GONE => ResumeStatus::ReplayGone,
                    _ => return Err(WireError::Malformed("unknown resume-status tag")),
                };
                Ok(Frame::ResumeAck {
                    status,
                    server_next_seq: r.get_u64()?,
                })
            }
            KIND_GOODBYE => Ok(Frame::Goodbye),
            other => Err(WireError::BadKind(other)),
        }
    }
}

fn decode_byte_vecs(r: &mut Reader<'_>) -> Result<Vec<Vec<u8>>, WireError> {
    let n = r.get_u32()?;
    let mut out = Vec::with_capacity(cap(n));
    for _ in 0..n {
        out.push(r.get_bytes()?.to_vec());
    }
    Ok(out)
}

fn decode_das_row(r: &mut Reader<'_>) -> Result<DasRow, WireError> {
    let etuple = HybridCiphertext::decode(r.get_bytes()?)?;
    let index = IndexValue(r.get_u64()?);
    Ok(DasRow { etuple, index })
}

fn encode_payload_set(w: &mut Writer, p: &PmPayloadSet) {
    w.put_u32(len_u32(p.evals.len()));
    for e in &p.evals {
        w.put_nat(e);
    }
    w.put_u32(len_u32(p.table.len()));
    for (id, ct) in &p.table {
        w.put_u64(*id);
        w.put_bytes(&ct.encode());
    }
}

fn decode_payload_set(r: &mut Reader<'_>) -> Result<PmPayloadSet, WireError> {
    let n = r.get_u32()?;
    let mut evals = Vec::with_capacity(cap(n));
    for _ in 0..n {
        evals.push(r.get_nat()?);
    }
    let m = r.get_u32()?;
    let mut table = Vec::with_capacity(cap(m));
    for _ in 0..m {
        let id = r.get_u64()?;
        let ct = SessionCiphertext::decode(r.get_bytes()?)?;
        table.push((id, ct));
    }
    Ok(PmPayloadSet { evals, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    // These in-module tests exercise frames whose fields need no key
    // material; ciphertext-bearing frames are covered by the golden-vector
    // and robustness integration tests.

    #[test]
    fn query_round_trip() {
        let f = Frame::Query {
            sql: "select * from r1 natural join r2".into(),
            credentials: vec![vec![1, 2, 3], vec![], vec![0xFF; 40]],
        };
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn partial_query_round_trip() {
        let f = Frame::PartialQuery {
            sql: "select * from r1".into(),
            credentials: vec![vec![9; 10]],
            join_attrs: vec!["k".into(), "dept".into()],
        };
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn server_query_round_trip() {
        let f = Frame::DasServerQuery {
            pairs: vec![
                (IndexValue(1), IndexValue(2)),
                (IndexValue(7), IndexValue(7)),
            ],
        };
        assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn polynomial_round_trip_both_shapes() {
        for poly in [
            PolyCoeffs::Flat(vec![Natural::from(5u64), Natural::from(0u64)]),
            PolyCoeffs::Bucketed(vec![
                vec![Natural::from(1u64)],
                vec![],
                vec![Natural::from(u64::MAX)],
            ]),
        ] {
            let f = Frame::PmPolynomial { poly };
            assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn header_validation() {
        let good = Frame::DasServerQuery { pairs: vec![] }.encode();
        assert!(Frame::decode(&good).is_ok());

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(Frame::decode(&bad).unwrap_err(), WireError::BadMagic);

        let mut bad = good.clone();
        bad[2] = 99;
        assert_eq!(Frame::decode(&bad).unwrap_err(), WireError::BadVersion(99));

        let mut bad = good.clone();
        bad[3] = 0xEE;
        assert_eq!(Frame::decode(&bad).unwrap_err(), WireError::BadKind(0xEE));

        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(Frame::decode(&bad).unwrap_err(), WireError::TrailingBytes);

        assert_eq!(Frame::decode(&good[..4]).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn declared_body_length_must_match() {
        let mut bytes = Frame::DasServerQuery {
            pairs: vec![(IndexValue(3), IndexValue(4))],
        }
        .encode();
        // Claim a longer body than present (len is the last header field).
        bytes[15] = bytes[15].wrapping_add(1);
        assert_eq!(Frame::decode(&bytes).unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn session_id_round_trips_and_decode_ignores_it() {
        let f = Frame::DasServerQuery {
            pairs: vec![(IndexValue(1), IndexValue(2))],
        };
        let bytes = f.encode_with_session(0xDEAD_BEEF_CAFE_F00D);
        let (session, decoded) = Frame::decode_with_session(&bytes).unwrap();
        assert_eq!(session, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(decoded, f);
        // The plain decoder accepts the same bytes and the body encoding
        // is independent of the session id.
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
        assert_eq!(bytes[16..], f.encode()[16..]);
        assert_eq!(Frame::decode_with_session(&f.encode()).unwrap().0, 0);
    }

    #[test]
    fn peek_header_reports_fields_without_decoding_the_body() {
        let f = Frame::Hello {
            client_version: WIRE_VERSION,
            max_attempts: 3,
            degrade_on_exhausted: true,
        };
        let bytes = f.encode_with_session(42);
        let h = Frame::peek_header(&bytes).unwrap();
        assert_eq!(h.version, WIRE_VERSION);
        assert_eq!(h.kind, f.kind());
        assert_eq!(h.session, 42);
        assert_eq!(h.body_len as usize, bytes.len() - 16);
        // Unknown kinds pass the peek (routing only) but fail full decode.
        let mut bad = bytes.clone();
        bad[3] = 0xEE;
        assert!(Frame::peek_header(&bad).is_ok());
        assert_eq!(Frame::decode(&bad).unwrap_err(), WireError::BadKind(0xEE));
    }

    #[test]
    fn session_frames_round_trip() {
        for f in [
            Frame::Hello {
                client_version: WIRE_VERSION,
                max_attempts: 0,
                degrade_on_exhausted: false,
            },
            Frame::HelloAck {
                status: SessionStatus::Accepted,
            },
            Frame::HelloAck {
                status: SessionStatus::VersionMismatch(1),
            },
            Frame::HelloAck {
                status: SessionStatus::DuplicateSession,
            },
            Frame::HelloAck {
                status: SessionStatus::ServerBusy,
            },
            Frame::Goodbye,
            Frame::Resume { next_seq: 0 },
            Frame::Resume { next_seq: u64::MAX },
            Frame::ResumeAck {
                status: ResumeStatus::Resumed,
                server_next_seq: 42,
            },
            Frame::ResumeAck {
                status: ResumeStatus::UnknownSession,
                server_next_seq: 0,
            },
            Frame::ResumeAck {
                status: ResumeStatus::SessionLive,
                server_next_seq: 0,
            },
            Frame::ResumeAck {
                status: ResumeStatus::ReplayGone,
                server_next_seq: 7,
            },
        ] {
            assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        }
    }
}
