//! Canonical wire format for every cross-party protocol message.
//!
//! The paper's Table 1 describes what the mediator and the client *observe*
//! during a run.  Observation is only meaningful over a concrete transcript,
//! so every message of Listings 2, 3 and 4 (and the request phase of
//! Listing 1) is encoded here into a versioned, length-prefixed byte frame
//! before it crosses a party boundary.  Parties communicate exclusively in
//! these bytes; the leakage audit and the transport byte accounting are
//! computed from decoded frames, never from hand-estimated sizes.
//!
//! # Frame grammar
//!
//! ```text
//! frame   := magic version kind session len body
//! magic   := 0x53 0x4D                  ("SM")
//! version := u8                         (currently 2)
//! kind    := u8                         (one tag per Frame variant)
//! session := u64 be                     (session id, 0 = in-process run)
//! len     := u32 be                     (body length in bytes)
//! body    := kind-specific fields, in declaration order
//! ```
//!
//! All integers are big-endian.  Variable-length fields (byte strings,
//! UTF-8 strings, magnitudes) carry a `u32` length prefix; sequences carry
//! a `u32` element count.  Decoding is *total*: every malformed input
//! returns a typed [`WireError`], the body must be consumed exactly, and
//! trailing bytes are rejected.
//!
//! # Session layer
//!
//! Version 2 threads a session id through every header so one mediator
//! process can multiplex concurrent client connections.  A connection
//! opens with [`Frame::Hello`] (version negotiation plus the client's
//! requested delivery policy), the server answers [`Frame::HelloAck`]
//! with a [`SessionStatus`], and [`Frame::Goodbye`] closes the session
//! cleanly.  The [`stream`] module frames whole encoded messages over any
//! `io::Read`/`io::Write` pair (the socket fabric's carry path).

#![forbid(unsafe_code)]

mod bytesio;
mod frame;
pub mod stream;

pub use frame::{
    DasTable, Frame, FrameHeader, PmPayloadSet, PolyCoeffs, ResumeStatus, SessionStatus, TupleRef,
};

use std::fmt;

/// Wire format version emitted and accepted by this build.
pub const WIRE_VERSION: u8 = 2;

/// The two magic bytes opening every frame.
pub const WIRE_MAGIC: [u8; 2] = *b"SM";

/// Typed decode failure.  Decoding never panics; every malformed input
/// maps onto one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a declared field.
    Truncated,
    /// The first two bytes are not [`WIRE_MAGIC`].
    BadMagic,
    /// The version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The kind byte does not name a known frame.
    BadKind(u8),
    /// The body (or the whole input) has bytes past the declared end.
    TrailingBytes,
    /// A field-level invariant failed (bad UTF-8, bad tag, bad shape).
    Malformed(&'static str),
    /// A frame named a session id the receiver has no record of.
    UnknownSession(u64),
    /// An embedded ciphertext failed its own codec or validity check.
    Crypto(secmed_crypto::CryptoError),
    /// An embedded DAS structure failed its own codec.
    Das(secmed_das::DasError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after frame body"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::UnknownSession(s) => write!(f, "unknown session id {s}"),
            WireError::Crypto(e) => write!(f, "embedded ciphertext: {e}"),
            WireError::Das(e) => write!(f, "embedded DAS structure: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<secmed_crypto::CryptoError> for WireError {
    fn from(e: secmed_crypto::CryptoError) -> Self {
        WireError::Crypto(e)
    }
}

impl From<secmed_das::DasError> for WireError {
    fn from(e: secmed_das::DasError) -> Self {
        WireError::Das(e)
    }
}
