//! Whole-message framing over byte streams.
//!
//! A socket carries a byte stream, not discrete messages, so the socket
//! fabric wraps every encoded frame in a `u32` big-endian length prefix —
//! a *blob*.  The prefix is transport plumbing, not part of the frame: the
//! bytes inside the blob are exactly what [`Frame::encode_with_session`]
//! produced, so byte accounting and golden vectors are unaffected by
//! which fabric carried them.
//!
//! [`Frame::encode_with_session`]: crate::Frame::encode_with_session

use std::io::{self, Read, Write};

/// Largest blob accepted from a peer.  Far above any real frame, far
/// below an allocation a hostile length prefix could weaponize.
pub const MAX_BLOB_LEN: u32 = 1 << 28;

/// Writes one length-prefixed blob and flushes the stream.
pub fn write_blob<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&n| n <= MAX_BLOB_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "blob too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed blob.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// prefix byte — the peer closed between messages); EOF anywhere inside a
/// blob is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_blob<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < prefix.len() {
        let slice = prefix.get_mut(filled..).unwrap_or(&mut []);
        let n = r.read(slice)?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a blob length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_BLOB_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "blob length prefix exceeds MAX_BLOB_LEN",
        ));
    }
    let mut blob = vec![0u8; len as usize];
    r.read_exact(&mut blob)?;
    Ok(Some(blob))
}

/// One step of a deadline-aware blob read (see [`BlobReader::step`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobRead {
    /// A whole blob arrived.
    Blob(Vec<u8>),
    /// Clean end of stream before the first prefix byte.
    Eof,
    /// The read deadline elapsed with no progress this step.  Partial
    /// bytes already consumed stay buffered in the reader, so the
    /// caller may tick its idle clock and call `step` again — a slow
    /// peer (Nagle, a stalled pipe) does not lose framing.
    Timeout,
}

/// A resumable, deadline-aware blob reader.
///
/// Like [`read_blob`], but built for a stream with a short read
/// timeout: a [`io::ErrorKind::WouldBlock`] or
/// [`io::ErrorKind::TimedOut`] at *any* point is surfaced as
/// [`BlobRead::Timeout`] instead of an error.  The reader keeps the
/// partially read prefix/body across steps, so the caller can enforce
/// its own idle deadline across as many timeouts as it likes and then
/// abandon the connection — mid-blob progress is never mistaken for a
/// framing error.  EOF inside a blob is still
/// [`io::ErrorKind::UnexpectedEof`].
#[derive(Debug, Default)]
pub struct BlobReader {
    prefix: [u8; 4],
    filled: usize,
    /// `Some((buf, got))` once the prefix is complete.
    body: Option<(Vec<u8>, usize)>,
}

impl BlobReader {
    /// A reader with no partial state.
    pub fn new() -> Self {
        BlobReader::default()
    }

    /// Whether a partially read blob is buffered (an EOF now would be
    /// mid-frame).
    pub fn mid_blob(&self) -> bool {
        self.filled > 0 || self.body.is_some()
    }

    /// Drives the read forward until a whole blob, a clean EOF, a
    /// timeout, or an error.
    pub fn step<R: Read>(&mut self, r: &mut R) -> io::Result<BlobRead> {
        const fn timeout(kind: io::ErrorKind) -> bool {
            matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        }
        while self.body.is_none() {
            let slice = self.prefix.get_mut(self.filled..).unwrap_or(&mut []);
            match r.read(slice) {
                Ok(0) => {
                    if self.filled == 0 {
                        return Ok(BlobRead::Eof);
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a blob length prefix",
                    ));
                }
                Ok(n) => self.filled += n,
                Err(e) if timeout(e.kind()) => return Ok(BlobRead::Timeout),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            if self.filled == self.prefix.len() {
                let len = u32::from_be_bytes(self.prefix);
                if len > MAX_BLOB_LEN {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "blob length prefix exceeds MAX_BLOB_LEN",
                    ));
                }
                self.body = Some((vec![0u8; len as usize], 0));
            }
        }
        loop {
            let Some((buf, got)) = self.body.as_mut() else {
                return Err(io::Error::other("blob reader lost its body"));
            };
            if *got == buf.len() {
                let (blob, _) = self.body.take().unwrap_or_default();
                self.filled = 0;
                return Ok(BlobRead::Blob(blob));
            }
            let slice = buf.get_mut(*got..).unwrap_or(&mut []);
            match r.read(slice) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream ended inside a blob body",
                    ));
                }
                Ok(n) => *got += n,
                Err(e) if timeout(e.kind()) => return Ok(BlobRead::Timeout),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    #[test]
    fn blob_round_trip_and_clean_eof() {
        let frames = [
            Frame::Goodbye.encode(),
            Frame::Goodbye.encode_with_session(7),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_blob(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_blob(&mut r).unwrap().as_deref(), Some(&f[..]));
        }
        assert_eq!(read_blob(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_inside_a_blob_is_an_error() {
        let mut buf = Vec::new();
        write_blob(&mut buf, &[1, 2, 3, 4]).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            let err = read_blob(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let bytes = u32::MAX.to_be_bytes();
        let mut r = &bytes[..];
        let err = read_blob(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A reader that yields a scripted sequence of results, modelling a
    /// socket with a read timeout.  Bytes a step delivers beyond the
    /// caller's buffer stay pending for the next read.
    struct Scripted {
        steps: Vec<Result<Vec<u8>, io::ErrorKind>>,
        pending: Vec<u8>,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending.is_empty() {
                if self.steps.is_empty() {
                    return Ok(0);
                }
                match self.steps.remove(0) {
                    Ok(bytes) => self.pending = bytes,
                    Err(kind) => return Err(io::Error::new(kind, "scripted")),
                }
            }
            let n = self.pending.len().min(buf.len());
            buf.get_mut(..n)
                .unwrap_or(&mut [])
                .copy_from_slice(self.pending.get(..n).unwrap_or(&[]));
            self.pending.drain(..n);
            Ok(n)
        }
    }

    #[test]
    fn step_read_surfaces_idle_timeouts_and_resumes() {
        let mut buf = Vec::new();
        write_blob(&mut buf, &[9, 8, 7]).unwrap();
        let mut r = Scripted {
            steps: vec![
                Err(io::ErrorKind::WouldBlock),
                Err(io::ErrorKind::TimedOut),
                Ok(buf.clone()),
            ],
            pending: Vec::new(),
        };
        let mut reader = BlobReader::new();
        assert_eq!(reader.step(&mut r).unwrap(), BlobRead::Timeout);
        assert!(!reader.mid_blob());
        assert_eq!(reader.step(&mut r).unwrap(), BlobRead::Timeout);
        assert_eq!(reader.step(&mut r).unwrap(), BlobRead::Blob(vec![9, 8, 7]));
        assert_eq!(reader.step(&mut r).unwrap(), BlobRead::Eof);
    }

    #[test]
    fn step_read_timeout_mid_blob_keeps_partial_state() {
        let mut buf = Vec::new();
        write_blob(&mut buf, &[1, 2, 3, 4]).unwrap();
        // Timeouts striking inside the prefix and inside the body: the
        // reader buffers the partial bytes and finishes the same blob
        // on later steps — a slow peer never loses framing.
        let mut r = Scripted {
            steps: vec![
                Ok(buf.get(..2).unwrap_or(&[]).to_vec()),
                Err(io::ErrorKind::WouldBlock),
                Ok(buf.get(2..6).unwrap_or(&[]).to_vec()),
                Err(io::ErrorKind::TimedOut),
                Ok(buf.get(6..).unwrap_or(&[]).to_vec()),
            ],
            pending: Vec::new(),
        };
        let mut reader = BlobReader::new();
        assert_eq!(reader.step(&mut r).unwrap(), BlobRead::Timeout);
        assert!(reader.mid_blob(), "partial prefix must be buffered");
        assert_eq!(reader.step(&mut r).unwrap(), BlobRead::Timeout);
        assert!(reader.mid_blob(), "partial body must be buffered");
        assert_eq!(
            reader.step(&mut r).unwrap(),
            BlobRead::Blob(vec![1, 2, 3, 4])
        );
        assert!(!reader.mid_blob(), "state must reset after a whole blob");
    }

    #[test]
    fn step_read_retries_interrupted_and_rejects_eof_mid_body() {
        let mut buf = Vec::new();
        write_blob(&mut buf, &[5, 6]).unwrap();
        let mut r = Scripted {
            steps: vec![
                Err(io::ErrorKind::Interrupted),
                Ok(buf.get(..5).unwrap_or(&[]).to_vec()),
            ],
            pending: Vec::new(),
        };
        let mut reader = BlobReader::new();
        let err = reader.step(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // EOF inside the length prefix is equally fatal.
        let mut r = Scripted {
            steps: vec![Ok(buf.get(..2).unwrap_or(&[]).to_vec())],
            pending: Vec::new(),
        };
        let mut reader = BlobReader::new();
        let err = reader.step(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
