//! Whole-message framing over byte streams.
//!
//! A socket carries a byte stream, not discrete messages, so the socket
//! fabric wraps every encoded frame in a `u32` big-endian length prefix —
//! a *blob*.  The prefix is transport plumbing, not part of the frame: the
//! bytes inside the blob are exactly what [`Frame::encode_with_session`]
//! produced, so byte accounting and golden vectors are unaffected by
//! which fabric carried them.
//!
//! [`Frame::encode_with_session`]: crate::Frame::encode_with_session

use std::io::{self, Read, Write};

/// Largest blob accepted from a peer.  Far above any real frame, far
/// below an allocation a hostile length prefix could weaponize.
pub const MAX_BLOB_LEN: u32 = 1 << 28;

/// Writes one length-prefixed blob and flushes the stream.
pub fn write_blob<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    let len = u32::try_from(bytes.len())
        .ok()
        .filter(|&n| n <= MAX_BLOB_LEN)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "blob too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one length-prefixed blob.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first
/// prefix byte — the peer closed between messages); EOF anywhere inside a
/// blob is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_blob<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0usize;
    while filled < prefix.len() {
        let slice = prefix.get_mut(filled..).unwrap_or(&mut []);
        let n = r.read(slice)?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a blob length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_BLOB_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "blob length prefix exceeds MAX_BLOB_LEN",
        ));
    }
    let mut blob = vec![0u8; len as usize];
    r.read_exact(&mut blob)?;
    Ok(Some(blob))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Frame;

    #[test]
    fn blob_round_trip_and_clean_eof() {
        let frames = [
            Frame::Goodbye.encode(),
            Frame::Goodbye.encode_with_session(7),
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_blob(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        for f in &frames {
            assert_eq!(read_blob(&mut r).unwrap().as_deref(), Some(&f[..]));
        }
        assert_eq!(read_blob(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_inside_a_blob_is_an_error() {
        let mut buf = Vec::new();
        write_blob(&mut buf, &[1, 2, 3, 4]).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            let err = read_blob(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let bytes = u32::MAX.to_be_bytes();
        let mut r = &bytes[..];
        let err = read_blob(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
