//! Shared fixtures for the wire integration tests: one deterministic
//! sample frame per frame type, built from seeded DRBGs so the encoded
//! bytes are reproducible across runs and machines.

use std::collections::BTreeSet;

use mpint::Natural;
use relalg::Value;
use secmed_crypto::drbg::HmacDrbg;
use secmed_crypto::group::{GroupSize, SafePrimeGroup};
use secmed_crypto::hybrid::{HybridCiphertext, HybridKeyPair, SessionKey};
use secmed_das::{DasRow, IndexTable, IndexValue, PartitionScheme};
use secmed_wire::{
    DasTable, Frame, PmPayloadSet, PolyCoeffs, ResumeStatus, SessionStatus, TupleRef, WIRE_VERSION,
};

/// One frame per [`Frame`] variant, in kind order, fully deterministic.
pub fn sample_frames() -> Vec<Frame> {
    let group = SafePrimeGroup::preset(GroupSize::S256);
    let mut rng = HmacDrbg::from_label("wire/fixtures");
    let keys = HybridKeyPair::generate(group, &mut rng);
    let ct = {
        let pk = keys.public();
        move |rng: &mut HmacDrbg, msg: &[u8]| -> HybridCiphertext { pk.encrypt(msg, rng) }
    };

    let domain: BTreeSet<Value> = (1i64..=4).map(Value::Int).collect();
    let table =
        IndexTable::build(&domain, PartitionScheme::EquiWidth(2), 7).expect("fixture index table");
    let row = |rng: &mut HmacDrbg, msg: &[u8], iv: u64| DasRow {
        etuple: ct(rng, msg),
        index: IndexValue(iv),
    };

    let session = SessionKey::generate(&mut rng);
    let session_ct = session.encrypt(b"fixture tuple set", &mut rng);

    let nat = |v: u64| Natural::from(v);

    vec![
        Frame::Query {
            sql: "select * from r1 natural join r2".to_string(),
            credentials: vec![vec![0x01, 0x02, 0x03], vec![0xff; 5]],
        },
        Frame::PartialQuery {
            sql: "select * from r1".to_string(),
            credentials: vec![vec![0xaa, 0xbb]],
            join_attrs: vec!["k".to_string()],
        },
        Frame::DasRelation {
            rows: vec![row(&mut rng, b"tuple-1", 11), row(&mut rng, b"tuple-2", 22)],
            table: DasTable::Plain(table.clone()),
        },
        Frame::DasIndexTables {
            tables: vec![ct(&mut rng, &table.encode())],
        },
        Frame::DasServerQuery {
            pairs: vec![
                (IndexValue(11), IndexValue(22)),
                (IndexValue(33), IndexValue(44)),
            ],
        },
        Frame::DasCandidates {
            pairs: vec![(row(&mut rng, b"cand-l", 1), row(&mut rng, b"cand-r", 2))],
        },
        Frame::CommutativeSet {
            items: vec![(nat(12345), ct(&mut rng, b"tuples-a"))],
        },
        Frame::CommutativeCross {
            items: vec![
                (nat(777), TupleRef::Id(0)),
                (nat(888), TupleRef::Echo(ct(&mut rng, b"echoed"))),
            ],
        },
        Frame::CommutativeDoubled {
            items: vec![(nat(999_999), TupleRef::Id(1))],
        },
        Frame::ResultPairs {
            pairs: vec![(ct(&mut rng, b"left-ts"), ct(&mut rng, b"right-ts"))],
        },
        Frame::PmPolynomial {
            poly: PolyCoeffs::Bucketed(vec![vec![nat(1), nat(2)], vec![nat(3), nat(4)]]),
        },
        Frame::PmEvaluations {
            payload: PmPayloadSet {
                evals: vec![nat(5), nat(6)],
                table: vec![(42, session_ct.clone())],
            },
        },
        Frame::PmDelivery {
            left: PmPayloadSet {
                evals: vec![nat(7)],
                table: Vec::new(),
            },
            right: PmPayloadSet {
                evals: vec![nat(8)],
                table: vec![(43, session_ct)],
            },
        },
        Frame::Hello {
            client_version: WIRE_VERSION,
            max_attempts: 3,
            degrade_on_exhausted: true,
        },
        Frame::HelloAck {
            status: SessionStatus::VersionMismatch(WIRE_VERSION),
        },
        Frame::Goodbye,
        Frame::Resume { next_seq: 5 },
        Frame::ResumeAck {
            status: ResumeStatus::Resumed,
            server_next_seq: 7,
        },
    ]
}
