//! Golden wire vectors: one committed hex dump per frame type.
//!
//! These tests pin the codec: any change to the byte layout — field
//! order, length prefixes, version, kind bytes — fails `encoding_matches_
//! the_committed_golden_vector` until the vectors are regenerated on
//! purpose (run with `WIRE_BLESS=1` to rewrite them) and the
//! [`secmed_wire::WIRE_VERSION`] is bumped.

mod common;

use std::fs;
use std::path::PathBuf;

use secmed_wire::Frame;

fn vector_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/vectors")
        .join(format!("{name}.hex"))
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2 + bytes.len() / 32 + 1);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            out.push('\n');
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

fn from_hex(text: &str) -> Vec<u8> {
    let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(compact.len().is_multiple_of(2), "odd hex digit count");
    (0..compact.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&compact[i..i + 2], 16).expect("hex digit"))
        .collect()
}

#[test]
fn every_frame_type_has_a_vector_and_round_trips() {
    let frames = common::sample_frames();
    // One sample per variant, with pairwise-distinct names.
    let mut names: Vec<&str> = frames.iter().map(|f| f.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), frames.len(), "duplicate frame names");

    for frame in &frames {
        let encoded = frame.encode();
        let decoded = Frame::decode(&encoded)
            .unwrap_or_else(|e| panic!("{}: decode failed: {e}", frame.name()));
        assert_eq!(&decoded, frame, "{}: round trip", frame.name());
    }
}

#[test]
fn encoding_matches_the_committed_golden_vector() {
    let bless = std::env::var_os("WIRE_BLESS").is_some();
    for frame in common::sample_frames() {
        let name = frame.name();
        let path = vector_path(name);
        let encoded = frame.encode();
        if bless {
            fs::write(&path, to_hex(&encoded)).expect("write vector");
            continue;
        }
        let committed = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing golden vector {}: {e}", path.display()));
        let expected = from_hex(&committed);
        assert_eq!(
            encoded, expected,
            "{name}: wire encoding drifted from the committed vector; if the \
             change is intentional, bump WIRE_VERSION and regenerate with \
             WIRE_BLESS=1"
        );
        // The committed bytes themselves decode back to the same frame.
        assert_eq!(
            Frame::decode(&expected).expect("vector decodes"),
            frame,
            "{name}"
        );
    }
}
