//! Decoder robustness: `Frame::decode` is total.  Whatever a hostile or
//! corrupted fabric delivers, decoding returns a typed [`WireError`] —
//! it never panics, never over-allocates, and never silently accepts a
//! mangled header.

mod common;

use secmed_testkit::cases;
use secmed_wire::{Frame, WireError, WIRE_VERSION};

/// Every strict prefix of a valid encoding fails to decode.
#[test]
fn truncation_at_every_offset_is_an_error() {
    for frame in common::sample_frames() {
        let encoded = frame.encode();
        for len in 0..encoded.len() {
            assert!(
                Frame::decode(&encoded[..len]).is_err(),
                "{}: prefix of {len}/{} bytes decoded",
                frame.name(),
                encoded.len()
            );
        }
    }
}

#[test]
fn bad_magic_version_and_kind_are_typed_errors() {
    for frame in common::sample_frames() {
        let encoded = frame.encode();

        let mut bad_magic = encoded.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(WireError::BadMagic)
        ));

        let mut bad_version = encoded.clone();
        bad_version[2] = WIRE_VERSION + 1;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(v)) if v == WIRE_VERSION + 1
        ));

        let mut bad_kind = encoded.clone();
        bad_kind[3] = 0xee;
        assert!(matches!(
            Frame::decode(&bad_kind),
            Err(WireError::BadKind(0xee))
        ));
    }
}

#[test]
fn oversized_length_prefix_and_trailing_bytes_are_errors() {
    for frame in common::sample_frames() {
        let mut oversized = frame.encode();
        // The body-length prefix lives at bytes 4..8; claiming 4 GiB − 1 of
        // body must fail as truncated, not preallocate.
        oversized[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Frame::decode(&oversized),
            Err(WireError::Truncated)
        ));

        let mut trailing = frame.encode();
        trailing.push(0x00);
        assert!(matches!(
            Frame::decode(&trailing),
            Err(WireError::TrailingBytes)
        ));
    }
}

/// Seeded fuzzing: random single-bit flips anywhere in a valid encoding
/// either decode to *some* frame or return an error — the call itself
/// must be total.  Flips inside variable-length counts are the classic
/// preallocation trap; `decode` caps its buffers, so this also bounds
/// memory.
#[test]
fn random_bit_flips_never_panic() {
    let frames = common::sample_frames();
    cases(256, "wire/bit-flips", |g| {
        let frame = g.choose(&frames);
        let mut encoded = frame.encode();
        let flips = g.usize_in(1, 8);
        for _ in 0..flips {
            let byte = g.usize_in(0, encoded.len() - 1);
            let bit = g.u8() % 8;
            encoded[byte] ^= 1 << bit;
        }
        // Total: returns Ok or Err, never panics.  If it decodes, the
        // result must re-encode without panicking either.
        if let Ok(decoded) = Frame::decode(&encoded) {
            let _ = decoded.encode();
        }
    });
}

/// Seeded fuzzing on raw garbage: arbitrary byte strings (including ones
/// that start with a valid header) never panic the decoder.
#[test]
fn random_garbage_never_panics() {
    cases(256, "wire/garbage", |g| {
        let mut bytes = g.bytes_in(0, 200);
        // Half the time, graft a plausible header on the front so the
        // fuzz reaches the body decoders instead of dying at the magic.
        if g.bool() && bytes.len() >= 4 {
            bytes[0] = b'S';
            bytes[1] = b'M';
            bytes[2] = WIRE_VERSION;
        }
        let _ = Frame::decode(&bytes);
    });
}
