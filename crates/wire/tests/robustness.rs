//! Decoder robustness: `Frame::decode` is total.  Whatever a hostile or
//! corrupted fabric delivers, decoding returns a typed [`WireError`] —
//! it never panics, never over-allocates, and never silently accepts a
//! mangled header.

mod common;

use secmed_testkit::cases;
use secmed_wire::{Frame, WireError, WIRE_VERSION};

/// Every strict prefix of a valid encoding fails to decode.
#[test]
fn truncation_at_every_offset_is_an_error() {
    for frame in common::sample_frames() {
        let encoded = frame.encode();
        for len in 0..encoded.len() {
            assert!(
                Frame::decode(&encoded[..len]).is_err(),
                "{}: prefix of {len}/{} bytes decoded",
                frame.name(),
                encoded.len()
            );
        }
    }
}

#[test]
fn bad_magic_version_and_kind_are_typed_errors() {
    for frame in common::sample_frames() {
        let encoded = frame.encode();

        let mut bad_magic = encoded.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(WireError::BadMagic)
        ));

        let mut bad_version = encoded.clone();
        bad_version[2] = WIRE_VERSION + 1;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(v)) if v == WIRE_VERSION + 1
        ));

        let mut bad_kind = encoded.clone();
        bad_kind[3] = 0xee;
        assert!(matches!(
            Frame::decode(&bad_kind),
            Err(WireError::BadKind(0xee))
        ));
    }
}

#[test]
fn oversized_length_prefix_and_trailing_bytes_are_errors() {
    for frame in common::sample_frames() {
        let mut oversized = frame.encode();
        // The body-length prefix lives at bytes 12..16; claiming 4 GiB − 1
        // of body must fail as truncated, not preallocate.
        oversized[12..16].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Frame::decode(&oversized),
            Err(WireError::Truncated)
        ));

        let mut trailing = frame.encode();
        trailing.push(0x00);
        assert!(matches!(
            Frame::decode(&trailing),
            Err(WireError::TrailingBytes)
        ));
    }
}

/// Seeded fuzzing: random single-bit flips anywhere in a valid encoding
/// either decode to *some* frame or return an error — the call itself
/// must be total.  Flips inside variable-length counts are the classic
/// preallocation trap; `decode` caps its buffers, so this also bounds
/// memory.
#[test]
fn random_bit_flips_never_panic() {
    let frames = common::sample_frames();
    cases(256, "wire/bit-flips", |g| {
        let frame = g.choose(&frames);
        let mut encoded = frame.encode();
        let flips = g.usize_in(1, 8);
        for _ in 0..flips {
            let byte = g.usize_in(0, encoded.len() - 1);
            let bit = g.u8() % 8;
            encoded[byte] ^= 1 << bit;
        }
        // Total: returns Ok or Err, never panics.  If it decodes, the
        // result must re-encode without panicking either.
        if let Ok(decoded) = Frame::decode(&encoded) {
            let _ = decoded.encode();
        }
    });
}

/// Seeded fuzzing on raw garbage: arbitrary byte strings (including ones
/// that start with a valid header) never panic the decoder.
#[test]
fn random_garbage_never_panics() {
    cases(256, "wire/garbage", |g| {
        let mut bytes = g.bytes_in(0, 200);
        // Half the time, graft a plausible header on the front so the
        // fuzz reaches the body decoders instead of dying at the magic.
        if g.bool() && bytes.len() >= 4 {
            bytes[0] = b'S';
            bytes[1] = b'M';
            bytes[2] = WIRE_VERSION;
        }
        let _ = Frame::decode(&bytes);
        let _ = Frame::decode_with_session(&bytes);
        let _ = Frame::peek_header(&bytes);
    });
}

/// Session-layer failure paths are typed errors, never panics: a hello
/// whose *header* speaks the wrong version, a frame naming a session the
/// receiver never opened, and truncated hellos at every length.
#[test]
fn session_failures_are_typed_errors() {
    let hello = Frame::Hello {
        client_version: WIRE_VERSION,
        max_attempts: 3,
        degrade_on_exhausted: false,
    };
    let encoded = hello.encode_with_session(42);

    // Bad version byte: rejected before the session layer ever sees it.
    let mut bad_version = encoded.clone();
    bad_version[2] = WIRE_VERSION + 1;
    assert!(matches!(
        Frame::decode_expecting_session(&bad_version, 42),
        Err(WireError::BadVersion(v)) if v == WIRE_VERSION + 1
    ));

    // Unknown session id: the typed error carries the id the frame named.
    assert!(matches!(
        Frame::decode_expecting_session(&encoded, 7),
        Err(WireError::UnknownSession(42))
    ));
    assert!(matches!(
        Frame::decode_expecting_session(&encoded, 42),
        Ok(Frame::Hello { .. })
    ));

    // Truncated hello: every strict prefix is an error, never a panic.
    for len in 0..encoded.len() {
        assert!(
            Frame::decode_expecting_session(&encoded[..len], 42).is_err(),
            "hello prefix of {len} bytes decoded"
        );
    }
}

/// Seeded fuzzing on the session path: mangled hellos either decode or
/// fail typed, and `decode_expecting_session` agrees with `peek_header`
/// about which session a frame names.
#[test]
fn mangled_hellos_never_panic() {
    cases(256, "wire/hello-fuzz", |g| {
        let hello = Frame::Hello {
            client_version: g.u8(),
            max_attempts: g.u32(),
            degrade_on_exhausted: g.bool(),
        };
        let mut encoded = hello.encode_with_session(g.u64());
        let flips = g.usize_in(0, 4);
        for _ in 0..flips {
            let byte = g.usize_in(0, encoded.len() - 1);
            encoded[byte] ^= 1 << (g.u8() % 8);
        }
        let expected = g.u64();
        match Frame::decode_expecting_session(&encoded, expected) {
            Ok(_) => {
                let h = Frame::peek_header(&encoded).expect("decoded frame has a header");
                assert_eq!(h.session, expected);
            }
            Err(WireError::UnknownSession(named)) => {
                let h = Frame::peek_header(&encoded).expect("typed session error has a header");
                assert_eq!(h.session, named);
                assert_ne!(named, expected);
            }
            Err(_) => {}
        }
    });
}
