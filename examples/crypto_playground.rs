//! The cryptographic substrate, stand-alone: every primitive the
//! protocols are built from, exercised directly through the public API.
//!
//! Run with: `cargo run --release --example crypto_playground`

use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::hybrid::HybridKeyPair;
use secmed::crypto::paillier::Paillier;
use secmed::crypto::polynomial::{EncryptedPoly, ZnPoly};
use secmed::crypto::sha256::to_hex;
use secmed::crypto::{HmacDrbg, SraCipher, SraDomain};
use secmed::mpint::Natural;

fn main() {
    let mut rng = HmacDrbg::from_label("playground");
    let group = SafePrimeGroup::preset(GroupSize::S512);
    println!(
        "safe-prime group: p has {} bits, q = (p-1)/2 prime\n",
        group.bits()
    );

    // --- Hybrid encryption: the paper's encrypt(...)/decrypt(...) ---
    let client_keys = HybridKeyPair::generate(group.clone(), &mut rng);
    let ct = client_keys
        .public()
        .encrypt(b"partial result tuple", &mut rng);
    println!(
        "hybrid ciphertext: {} bytes (KEM + ChaCha20 + HMAC)",
        ct.byte_len()
    );
    assert_eq!(client_keys.decrypt(&ct).unwrap(), b"partial result tuple");
    println!("hybrid roundtrip ✓\n");

    // --- Commutative encryption: f_e1(f_e2(x)) = f_e2(f_e1(x)) ---
    let domain = SraDomain::new(group.clone());
    let s1 = SraCipher::generate(domain.clone(), &mut rng);
    let s2 = SraCipher::generate(domain.clone(), &mut rng);
    let h = domain.hash(b"join-value-42");
    let both_a = s1.encrypt(&s2.encrypt(&h));
    let both_b = s2.encrypt(&s1.encrypt(&h));
    assert_eq!(both_a, both_b);
    println!("commutativity: f_e1∘f_e2 = f_e2∘f_e1  ✓");
    println!(
        "double encryption of h('join-value-42'): {}…\n",
        &both_a.to_hex()[..32]
    );

    // --- Paillier: additive homomorphism ---
    let paillier = Paillier::test_keypair(512, "playground");
    let pk = paillier.public();
    let e10 = pk.encrypt(&Natural::from(10u64), &mut rng).unwrap();
    let e32 = pk.encrypt(&Natural::from(32u64), &mut rng).unwrap();
    let sum = pk.add(&e10, &e32);
    let scaled = pk.scale(&sum, &Natural::from(100u64));
    assert_eq!(paillier.decrypt(&sum), Natural::from(42u64));
    assert_eq!(paillier.decrypt(&scaled), Natural::from(4200u64));
    println!("Paillier: E(10) ⊕ E(32) = E(42), E(42)^100 = E(4200)  ✓\n");

    // --- Oblivious polynomial evaluation (the PM core) ---
    let roots: Vec<Natural> = [3u64, 7, 11].iter().map(|&v| Natural::from(v)).collect();
    let poly = ZnPoly::from_roots(&roots, pk.n());
    let enc_poly = EncryptedPoly::encrypt(&poly, pk, &mut rng);
    let payload = Natural::from(0xbeefu64);
    let hit = enc_poly
        .eval_masked(&Natural::from(7u64), &payload, &mut rng)
        .unwrap();
    let miss = enc_poly
        .eval_masked(&Natural::from(8u64), &payload, &mut rng)
        .unwrap();
    assert_eq!(paillier.decrypt(&hit), payload);
    assert_ne!(paillier.decrypt(&miss), payload);
    println!("oblivious polynomial evaluation:");
    println!("  E(r·P(7) + payload)  decrypts to payload (7 is a root)    ✓");
    println!("  E(r·P(8) + payload)  decrypts to random garbage (8 isn't) ✓\n");

    // --- The ideal hash into QR_p ---
    let hv = domain.hash(b"alice");
    println!("h('alice') ∈ QR_p: {}", group.is_subgroup_element(&hv));
    println!(
        "sha256('alice') = {}",
        to_hex(&secmed::crypto::sha256::sha256(b"alice"))
    );
}
