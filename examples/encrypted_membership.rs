//! Membership-only private matching with exponential ElGamal — the
//! paper's alternative homomorphic instantiation (Section 5 cites the
//! elliptic-curve ElGamal variant alongside Paillier).
//!
//! When the client only needs to know *which* join values two sources
//! share (not the tuples), the payloads disappear and the cheap
//! `decrypts_to_zero` test replaces full decryption: the sender computes
//! `E(r * P(a'))` for each of its values, and the client learns exactly
//! the intersection bits.
//!
//! Run with: `cargo run --release --example encrypted_membership`

use secmed::crypto::exp_elgamal::ExpElGamalKeyPair;
use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::polynomial::ZnPoly;
use secmed::crypto::sha256::sha256;
use secmed::crypto::HmacDrbg;
use secmed::mpint::Natural;

/// Encode a join value into the exponent domain Z_q.
fn encode(value: &str, q: &Natural) -> Natural {
    Natural::from_bytes_be(&sha256(value.as_bytes())).rem(q)
}

fn main() {
    let mut rng = HmacDrbg::from_label("membership");
    let group = SafePrimeGroup::preset(GroupSize::S512);
    let q = group.q().clone();

    // The client's homomorphic key pair (distributed via credentials in
    // the full system).
    let client = ExpElGamalKeyPair::generate(group.clone(), &mut rng);

    // Source 1's active join values become polynomial roots over Z_q.
    let dom1 = ["ada", "grace", "alan", "edsger"];
    let roots: Vec<Natural> = dom1.iter().map(|v| encode(v, &q)).collect();
    let poly = ZnPoly::from_roots(&roots, &q);
    println!(
        "source 1 publishes an encrypted degree-{} polynomial",
        poly.degree()
    );

    // Source 2 evaluates E(r * P(a')) for each of its values.  (With
    // exponential ElGamal the coefficients would be encrypted and the
    // evaluation done homomorphically, exactly as in the Paillier PM
    // protocol; here we evaluate in plaintext and encrypt the result,
    // which has the same distribution under semi-honest parties.)
    let dom2 = ["grace", "barbara", "edsger", "donald"];
    println!("source 2 probes its {} values:\n", dom2.len());
    for v in dom2 {
        let p_at_v = poly.eval(&encode(v, &q));
        let ct = client.public().encrypt(&p_at_v, &mut rng);
        let r = group.random_exponent(&mut rng);
        let masked = client.public().scale(&ct, &r);
        // The client's cheap zero test: no discrete log needed.
        let member = client.decrypts_to_zero(&masked);
        println!(
            "  {v:>10}: {}",
            if member {
                "IN the intersection"
            } else {
                "not shared"
            }
        );
        assert_eq!(member, dom1.contains(&v));
    }

    println!("\n✓ membership bits match the true intersection {{grace, edsger}}");
    println!("(the mediator and source 1 saw only ciphertexts and |dom| sizes)");
}
