//! A supply-chain federation running the DAS protocol, sweeping the
//! partitioning knob to expose the efficiency/privacy trade-off of the
//! paper's Section 6 live.
//!
//! Two suppliers hold part catalogues keyed by `part_no`; a purchasing
//! client joins them through the mediator.  For each partitioning scheme
//! the example prints the superset the client had to post-process and the
//! inference exposure an adversarial mediator would enjoy if it ever got
//! hold of the index tables.
//!
//! Run with: `cargo run --release --example federated_suppliers`

use secmed::core::workload::WorkloadSpec;
use secmed::core::{DasConfig, Engine, RunOptions, ScenarioBuilder};
use secmed::das::exposure::{entropy_bits, guessing_exposure, superset_factor};
use secmed::das::{IndexTable, PartitionScheme};

fn main() {
    let workload = WorkloadSpec {
        left_rows: 60,
        right_rows: 80,
        left_domain: 40,
        right_domain: 50,
        shared_values: 18,
        payload_attrs: 2,
        seed: "suppliers".to_string(),
        ..Default::default()
    }
    .generate();
    let dom = workload
        .left
        .active_domain("k")
        .expect("join attribute exists");

    println!(
        "federated suppliers: |R1|={}, |R2|={}, true join={}\n",
        workload.left.len(),
        workload.right.len(),
        workload.expected_join_size
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "partitioning", "partitions", "|RC|", "superset", "exposure", "entropy(bits)"
    );

    let schemes: Vec<(String, PartitionScheme)> = vec![
        ("equi-depth(2)".into(), PartitionScheme::EquiDepth(2)),
        ("equi-depth(8)".into(), PartitionScheme::EquiDepth(8)),
        ("equi-depth(32)".into(), PartitionScheme::EquiDepth(32)),
        ("equi-width(8)".into(), PartitionScheme::EquiWidth(8)),
        ("per-value".into(), PartitionScheme::PerValue),
    ];

    for (name, scheme) in schemes {
        let mut scenario = ScenarioBuilder::new(&workload)
            .seed("suppliers")
            .paillier_bits(512)
            .build();
        let report = Engine::run(
            &mut scenario,
            &RunOptions::das(DasConfig {
                scheme,
                ..Default::default()
            }),
        )
        .expect("protocol run succeeds");
        assert_eq!(report.result.len(), workload.expected_join_size);

        let rc = report
            .mediator_view
            .server_result_size
            .expect("mediator sees |RC|");
        let table = IndexTable::build(&dom, scheme, 7).expect("partitioning succeeds");
        println!(
            "{:<22} {:>10} {:>10} {:>10.2} {:>12.4} {:>14.3}",
            name,
            table.len(),
            rc,
            superset_factor(rc, workload.expected_join_size),
            guessing_exposure(&table, &dom),
            entropy_bits(&table, &dom),
        );
    }

    println!("\nreading: coarse partitions protect values (low exposure, high entropy)");
    println!("but inflate the superset the client must decrypt and re-filter;");
    println!("per-value partitioning is exact but pins each row to its join value.");
}
