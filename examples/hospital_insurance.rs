//! The paper's motivating inter-enterprise scenario: a hospital and an
//! insurer, mutually distrustful, joined through an untrusted mediator.
//!
//! Demonstrates (Figure 2 of the paper):
//! * property-based credentials issued by a CA,
//! * row-level access control at each datasource (the auditor may only
//!   see non-psychiatric hospital records and open insurance claims),
//! * all three delivery-phase protocols producing the identical result,
//!   with their different leakage profiles printed side by side.
//!
//! Run with: `cargo run --release --example hospital_insurance`

use secmed::core::{
    AccessPolicy, AccessRule, CertificationAuthority, Client, CommutativeConfig, DasConfig,
    DataSource, Engine, Mediator, PmConfig, Property, ProtocolKind, RunOptions, Scenario,
};
use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::HmacDrbg;
use secmed::relalg::{Predicate, Relation, Schema, Type, Value};

fn hospital_records() -> Relation {
    let schema = Schema::new(&[
        ("ssn", Type::Int),
        ("patient", Type::Str),
        ("ward", Type::Str),
        ("days", Type::Int),
    ]);
    Relation::build(
        schema,
        vec![
            vec![
                Value::Int(101),
                Value::from("ada"),
                Value::from("cardiology"),
                Value::Int(4),
            ],
            vec![
                Value::Int(102),
                Value::from("grace"),
                Value::from("oncology"),
                Value::Int(12),
            ],
            vec![
                Value::Int(103),
                Value::from("edsger"),
                Value::from("psychiatry"),
                Value::Int(30),
            ],
            vec![
                Value::Int(104),
                Value::from("alan"),
                Value::from("cardiology"),
                Value::Int(2),
            ],
            vec![
                Value::Int(105),
                Value::from("barbara"),
                Value::from("neurology"),
                Value::Int(7),
            ],
        ],
    )
    .expect("rows conform")
}

fn insurance_claims() -> Relation {
    let schema = Schema::new(&[
        ("ssn", Type::Int),
        ("claim_id", Type::Int),
        ("amount", Type::Int),
        ("open", Type::Bool),
    ]);
    Relation::build(
        schema,
        vec![
            vec![
                Value::Int(101),
                Value::Int(9001),
                Value::Int(5400),
                Value::Bool(true),
            ],
            vec![
                Value::Int(102),
                Value::Int(9002),
                Value::Int(18100),
                Value::Bool(true),
            ],
            vec![
                Value::Int(102),
                Value::Int(9003),
                Value::Int(950),
                Value::Bool(false),
            ],
            vec![
                Value::Int(103),
                Value::Int(9004),
                Value::Int(7500),
                Value::Bool(true),
            ],
            vec![
                Value::Int(107),
                Value::Int(9005),
                Value::Int(120),
                Value::Bool(true),
            ],
        ],
    )
    .expect("rows conform")
}

fn main() {
    let group = SafePrimeGroup::preset(GroupSize::S512);
    let mut rng = HmacDrbg::from_label("hospital/ca");
    let ca = CertificationAuthority::new(group.clone(), &mut rng);

    // The client is a claims auditor; the credential asserts the role but
    // not the identity (paper Section 2).
    let client = Client::setup(
        &ca,
        vec![Property::new("role", "claims-auditor")],
        group,
        768,
        "hospital/client",
    );

    // Hospital: auditors may read everything except psychiatry records.
    let hospital_policy = AccessPolicy::new(vec![AccessRule::filtered(
        vec![Property::new("role", "claims-auditor")],
        Predicate::Not(Box::new(Predicate::eq_lit("ward", "psychiatry"))),
    )]);
    // Insurer: auditors may read open claims only.
    let insurer_policy = AccessPolicy::new(vec![AccessRule::filtered(
        vec![Property::new("role", "claims-auditor")],
        Predicate::eq_lit("open", true),
    )]);

    let hospital = DataSource::new(
        "hospital",
        hospital_records(),
        hospital_policy,
        ca.public_key().clone(),
    );
    let insurer = DataSource::new(
        "insurer",
        insurance_claims(),
        insurer_policy,
        ca.public_key().clone(),
    );
    let mediator = Mediator::new(&[&hospital, &insurer]);

    let mut scenario = Scenario {
        client,
        mediator,
        left: hospital,
        right: insurer,
        query: "select * from hospital natural join insurer".to_string(),
    };

    println!("query: {}", scenario.query);
    println!("policies: hospital hides psychiatry; insurer reveals open claims only\n");

    let expected = scenario.expected_result().expect("reference join");
    println!(
        "reference join (after access control): {} tuples",
        expected.len()
    );
    println!("{}", expected);

    for (name, kind) in [
        (
            "Database-as-a-Service",
            ProtocolKind::Das(DasConfig::default()),
        ),
        (
            "Commutative Encryption",
            ProtocolKind::Commutative(CommutativeConfig::default()),
        ),
        ("Private Matching", ProtocolKind::Pm(PmConfig::default())),
    ] {
        let report =
            Engine::run(&mut scenario, &RunOptions::new(kind)).expect("protocol run succeeds");
        assert_eq!(
            report.result.sorted(),
            expected.sorted(),
            "{name} result differs"
        );
        println!("== {name}");
        println!(
            "   result: {} tuples (identical to reference)",
            report.result.len()
        );
        println!("   mediator learned: {}", report.mediator_view.describe());
        println!("   client received:  {}", report.client_view.describe());
        println!(
            "   traffic: {} messages, {} bytes",
            report.transport.message_count(),
            report.transport.total_bytes()
        );
        println!();
    }

    // Note: patient 103 (psychiatry) never appears — the hospital filtered
    // the row before encryption, so no protocol can leak it.
    assert!(expected
        .tuples()
        .iter()
        .all(|t| t.at(0) != &Value::Int(103)));
    println!("✓ psychiatry record (ssn 103) never left the hospital, in any protocol");
}
