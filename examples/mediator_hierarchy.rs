//! Mediator hierarchy — the future-work item of the paper's Section 8:
//! a mediator acting as a datasource for another mediator, executing two
//! join queries successively: `(patients ⨝ treatments) ⨝ billing`.
//!
//! Run with: `cargo run --release --example mediator_hierarchy`

use secmed::core::hierarchy::{chained_join, SourceSpec};
use secmed::core::{
    AccessPolicy, CertificationAuthority, Client, CommutativeConfig, Property, RunOptions,
};
use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::HmacDrbg;
use secmed::relalg::{Relation, Schema, Type, Value};

fn patients() -> Relation {
    Relation::build(
        Schema::new(&[("pid", Type::Int), ("name", Type::Str)]),
        vec![
            vec![Value::Int(1), Value::from("ada")],
            vec![Value::Int(2), Value::from("grace")],
            vec![Value::Int(3), Value::from("alan")],
        ],
    )
    .expect("rows conform")
}

fn treatments() -> Relation {
    Relation::build(
        Schema::new(&[("pid", Type::Int), ("code", Type::Int)]),
        vec![
            vec![Value::Int(1), Value::Int(77)],
            vec![Value::Int(2), Value::Int(88)],
            vec![Value::Int(2), Value::Int(99)],
        ],
    )
    .expect("rows conform")
}

fn billing() -> Relation {
    Relation::build(
        Schema::new(&[("code", Type::Int), ("price", Type::Int)]),
        vec![
            vec![Value::Int(77), Value::Int(1200)],
            vec![Value::Int(88), Value::Int(450)],
            vec![Value::Int(99), Value::Int(9000)],
        ],
    )
    .expect("rows conform")
}

fn main() {
    let group = SafePrimeGroup::preset(GroupSize::S512);
    let mut rng = HmacDrbg::from_label("hierarchy/ca");
    let ca = CertificationAuthority::new(group.clone(), &mut rng);

    let client_template = || {
        Client::setup(
            &ca,
            vec![Property::new("role", "planner")],
            group.clone(),
            768,
            "hierarchy/client",
        )
    };

    let report = chained_join(
        &ca,
        client_template,
        SourceSpec {
            name: "patients".to_string(),
            relation: patients(),
            policy: AccessPolicy::allow_all(),
        },
        SourceSpec {
            name: "treatments".to_string(),
            relation: treatments(),
            policy: AccessPolicy::allow_all(),
        },
        SourceSpec {
            name: "billing".to_string(),
            relation: billing(),
            policy: AccessPolicy::allow_all(),
        },
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .expect("chained mediation succeeds");

    println!("(patients ⨝ treatments) ⨝ billing, two successive mediations:\n");
    for (i, stage) in report.stages.iter().enumerate() {
        println!(
            "stage {}: {} tuples, {} messages, {} bytes, mediator learned: {}",
            i + 1,
            stage.result.len(),
            stage.transport.message_count(),
            stage.transport.total_bytes(),
            stage.mediator_view.describe()
        );
    }

    println!("\nfinal result ({} tuples):", report.result.len());
    println!("{}", report.result);

    // Verify against the plain three-way join.
    let reference = patients()
        .natural_join(&treatments())
        .and_then(|r| r.natural_join(&billing()))
        .expect("plain join");
    assert_eq!(report.result.sorted(), reference.sorted());
    println!(
        "✓ matches the plain three-way join ({} tuples)",
        reference.len()
    );
}
