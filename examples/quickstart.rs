//! Quickstart: the complete MMM pipeline in one file.
//!
//! Sets up a certification authority, a client with credentials, two
//! datasources and a mediator; runs a JOIN query through the commutative
//! encryption protocol; prints the recorded message flow (the paper's
//! Figure 1/2 as a trace) and the decrypted global result.
//!
//! Run with: `cargo run --release --example quickstart`

use secmed::core::workload::WorkloadSpec;
use secmed::core::{CommutativeConfig, Engine, RunOptions, ScenarioBuilder};

fn main() {
    // A synthetic workload: two relations sharing join attribute `k`.
    let workload = WorkloadSpec {
        left_rows: 12,
        right_rows: 12,
        left_domain: 8,
        right_domain: 8,
        shared_values: 4,
        payload_attrs: 1,
        seed: "quickstart".to_string(),
        ..Default::default()
    }
    .generate();

    // CA + client (with credentials) + mediator + two sources, wired up.
    let mut scenario = ScenarioBuilder::new(&workload)
        .seed("quickstart")
        .paillier_bits(512)
        .build();
    scenario.query = "select * from r1 natural join r2".to_string();

    println!("global query: {}\n", scenario.query);

    // Run the full protocol: request phase (Listing 1) + commutative
    // delivery phase (Listing 3).
    let report = Engine::run(
        &mut scenario,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .expect("mediation succeeds");

    println!("message flow (recorded transport):");
    println!("{}", report.transport.render_flow());

    println!("global result ({} tuples):", report.result.len());
    println!("{}", report.result);

    println!("mediator learned: {}", report.mediator_view.describe());
    println!("client received:  {}", report.client_view.describe());

    // Verify against the plaintext reference join.
    let expected = scenario.expected_result().expect("reference join");
    assert_eq!(report.result.sorted(), expected.sorted());
    println!(
        "\n✓ result matches the plaintext reference join ({} tuples)",
        expected.len()
    );
}
