//! Three-way federation: one SQL join over three sources, planned twice.
//!
//! A hospital, an insurer, and a claims registry each hold one relation
//! of a chain join.  The planner maps every join node onto one of the
//! three delivery protocols by §6 cost — but only among the protocols the
//! client's leakage budget admits.  Running the same query under an open
//! budget and under a tightened one produces two *different* plans; both
//! execute over the mediator hierarchy and print their unified reports,
//! including the per-node predicted-vs-observed primitive cross-check.
//!
//! Run with: `cargo run --release --example three_way_federation`

use secmed::core::hierarchy::SourceSpec;
use secmed::core::observe::unified_plan_report;
use secmed::core::plan::{exposure, LeakageBudget, PlanRunOptions};
use secmed::core::{AccessPolicy, CertificationAuthority, Client, Engine, Property, ProtocolKind};
use secmed::crypto::drbg::HmacDrbg;
use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::plan::{stats_of, Planner};
use secmed::relalg::{Relation, Schema, Type, Value};
use std::collections::BTreeMap;

fn relation(attrs: &[(&str, Type)], rows: &[&[i64]]) -> Relation {
    Relation::build(
        Schema::new(attrs),
        rows.iter()
            .map(|r| r.iter().map(|v| Value::Int(*v)).collect())
            .collect(),
    )
    .expect("well-typed example rows")
}

fn main() {
    // Three sources sharing a chain of join keys: patients link the
    // hospital to the insurer via `pid`, contracts link the insurer to
    // the registry via `contract`.
    let mut catalog = BTreeMap::new();
    catalog.insert(
        "hospital".to_string(),
        relation(
            &[("pid", Type::Int), ("diagnosis", Type::Int)],
            &[&[1, 100], &[2, 101], &[3, 102], &[4, 100], &[5, 103]],
        ),
    );
    catalog.insert(
        "insurer".to_string(),
        relation(
            &[("pid", Type::Int), ("contract", Type::Int)],
            &[&[1, 10], &[2, 11], &[3, 10], &[6, 12], &[7, 13]],
        ),
    );
    catalog.insert(
        "registry".to_string(),
        relation(
            &[("contract", Type::Int), ("premium", Type::Int)],
            &[&[10, 500], &[11, 750], &[12, 600]],
        ),
    );
    let query = "select * from hospital natural join insurer natural join registry";
    println!("global query: {query}\n");

    let schemas: BTreeMap<_, _> = catalog
        .iter()
        .map(|(k, v)| (k.clone(), v.schema().clone()))
        .collect();
    let stats = stats_of(&catalog);
    let planner = Planner::new();

    // Plan 1: an open budget — cost alone decides.
    let open = planner
        .plan(query, &schemas, &stats, LeakageBudget::open())
        .expect("open budget always plans");
    println!("{}", open.describe());

    // Plan 2: forbid the distinguishing leakage of whatever won node 0,
    // and the planner must route around it.
    let tight = match open.nodes[0].protocol {
        ProtocolKind::Das(_) => LeakageBudget {
            client_superset: false,
            ..LeakageBudget::open()
        },
        ProtocolKind::Commutative(_) => LeakageBudget {
            mediator_intersection_size: false,
            ..LeakageBudget::open()
        },
        ProtocolKind::Pm(_) => LeakageBudget {
            client_extra_ciphertexts: false,
            ..LeakageBudget::open()
        },
    };
    let flipped = planner
        .plan(query, &schemas, &stats, tight)
        .expect("tightened budget still admits a protocol");
    println!("{}", flipped.describe());
    assert_ne!(
        open.nodes[0].protocol.key(),
        flipped.nodes[0].protocol.key(),
        "the tightened budget must flip the first node"
    );
    for n in &flipped.nodes {
        assert!(tight.permits(&exposure(&n.protocol)));
    }

    // Execute both plans over the mediator hierarchy.
    let group = SafePrimeGroup::preset(GroupSize::S512);
    let mut rng = HmacDrbg::from_label("three-way/ca");
    let ca = CertificationAuthority::new(group.clone(), &mut rng);
    let client = || {
        Client::setup(
            &ca,
            vec![Property::new("role", "auditor")],
            group.clone(),
            512,
            "three-way/client",
        )
    };
    let sources = || -> Vec<SourceSpec> {
        catalog
            .iter()
            .map(|(name, rel)| SourceSpec {
                name: name.clone(),
                relation: rel.clone(),
                policy: AccessPolicy::allow_all(),
            })
            .collect()
    };

    for (label, plan) in [("open budget", &open), ("tightened budget", &flipped)] {
        let exec = Engine::run_plan(&ca, client, sources(), plan, &PlanRunOptions::default())
            .expect("plan executes");
        println!("=== execution under the {label} ===");
        println!("{}", unified_plan_report(plan, &exec).render_table());
        println!(
            "final result ({} tuples):\n{}",
            exec.result.len(),
            exec.result
        );
    }
}
