#!/usr/bin/env bash
# BENCH_*.json regression gate.
#
#   scripts/bench_check.sh          # smoke: emit BENCH_core.json, check
#                                   # schema + required series (CI mode)
#   scripts/bench_check.sh full     # also gate against the committed
#                                   # baseline BENCH_core.json: byte
#                                   # series exactly, wall-clock within
#                                   # --max-ratio
#
# The committed baseline lives at the repo root; refresh it with
#   cargo run --release -p secmed-bench --bin report && \
#   cp target/bench/BENCH_core.json BENCH_core.json
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-smoke}"

# Emit a fresh trajectory (also exercises the instrumented engine paths).
cargo run -q --release --offline -p secmed-bench --bin report >/dev/null

required=()
for proto in das commutative pm; do
  for rows in 16 32 64 128; do
    required+=(--require "$proto/rows$rows" --require "$proto/rows$rows/bytes")
  done
done

if [ "$mode" = full ]; then
  cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
    target/bench/BENCH_core.json "${required[@]}" \
    --baseline BENCH_core.json --max-ratio 4.0
else
  cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
    target/bench/BENCH_core.json "${required[@]}"
fi

# The lint wall-time trajectory: secmed-lint records its scan duration as
# a *timing* series (unit "ns"), never a deterministic one, so machine
# variance cannot fail the byte-exact baseline compare.  Run the scanner
# for its report only (the ratchet gate itself runs later in ci.sh) and
# validate the declaration.
cargo run -q --release --offline -p secmed-lint -- . >/dev/null 2>&1 || true
cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
  target/bench/BENCH_lint.json --require-timing lint/wall

# The planner trajectory: plan seeded 3/4/5-table chain federations and
# validate both series classes — nodes/cost/est_rows are deterministic
# (pure functions of the seeded inputs), wall and plans/sec are timing.
cargo run -q --release --offline -p secmed-bench --bin plan_bench >/dev/null
cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
  target/bench/BENCH_plan.json \
  --require plan/nodes --require plan/cost --require plan/est_rows \
  --require plan/plans_per_sec --require-timing plan/wall

# The soak trajectory: >=100 concurrent client sessions against one
# in-process server over loopback TCP.  Throughput and wall-clock are
# timing series (machine-local); the per-session byte volumes are a
# deterministic series, comparable against any baseline.
cargo run -q --release --offline -p secmed-bench --bin soak -- 128 >/dev/null
cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
  target/bench/BENCH_soak.json \
  --require soak/sessions --require soak/sessions_per_sec \
  --require soak/session/bytes --require-timing soak/wall

# The resilience trajectory: admission refusals under overload, resume
# counts under server-side chaos, and per-session bytes are all
# deterministic (seeded fault rolls, byte-identical resume); the drain
# latency and total wall are timing series.  The deterministic series
# gate against the committed baseline BENCH_resilience.json in full
# mode (exact — counts are seeded, not raced); refresh it with
#   cargo run --release -p secmed-bench --bin resilience && \
#   cp target/bench/BENCH_resilience.json BENCH_resilience.json
resilience_required=(
  --require resilience/admitted --require resilience/refused
  --require resilience/resumed --require resilience/session/bytes
  --require-timing resilience/drain/wall --require-timing resilience/wall
)
cargo run -q --release --offline -p secmed-bench --bin resilience >/dev/null
if [ "$mode" = full ]; then
  cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
    target/bench/BENCH_resilience.json "${resilience_required[@]}" \
    --baseline BENCH_resilience.json --max-ratio 4.0
else
  cargo run -q --release --offline -p secmed-bench --bin bench_check -- \
    target/bench/BENCH_resilience.json "${resilience_required[@]}"
fi
