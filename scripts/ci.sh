#!/usr/bin/env bash
# Tier-1 gate: everything must pass offline against an empty registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check

# Static analysis: the in-tree lint (prints a rule → count table and
# exits non-zero on any violation) and clippy with warnings denied.
cargo run -q -p secmed-lint --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
