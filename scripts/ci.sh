#!/usr/bin/env bash
# Tier-1 gate: everything must pass offline against an empty registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check

# The engine's hard invariant, run by name so a filter change can never
# silently drop it: identical RunReports at 1, 2, and 8 worker threads.
cargo test -q --offline -p secmed-core --test determinism

# Wire-format stability, run by name for the same reason: the committed
# golden vectors must match the codec byte for byte.
cargo test -q --offline -p secmed-wire --test golden_vectors

# The fault fabric's invariants, run by name: 64 seeded fault plans per
# protocol, checked for typed outcomes, schedule-independent fault
# logs, and exact byte accounting under retransmission.
cargo test -q --offline -p secmed-core --test chaos
echo "chaos suite: swept 64 fault seeds x 3 protocols x 3 thread counts (+ zero-fault equivalence)"

# The transport redesign's acceptance oracle, run by name: the same
# seeded scenario over loopback TCP sockets must be byte-identical to
# the in-process fabric (log, views, report) at 1/2/8 threads; the
# session layer's failure paths must reclaim the session table; and the
# full chaos sweep must hold over real sockets.
cargo test -q --offline -p secmed-server --test equivalence
cargo test -q --offline -p secmed-server --test sessions
cargo test -q --offline -p secmed-server --test chaos_socket
echo "socket fabric: loopback equivalence + session negotiation + chaos-over-sockets ok"

# The session-resilience layer (PR 10), run by name: reconnect-and-resume
# byte-equivalence, admission control and drain, idle reaping, the
# 64-seed chaos grid under *server-side* fire, and the session-table
# hygiene properties (no leaks, one terminal ledger line per connection,
# Goodbyes surviving teardown under load).
cargo test -q --offline -p secmed-server --test resilience
cargo test -q --offline -p secmed-server --test chaos_resilient
cargo test -q --offline -p secmed-server --test hygiene
echo "resilience: resume equivalence + admission/drain + server-chaos grid + hygiene ok"

# Soak smoke, run by name: eight concurrent client sessions against one
# server process, all Clean, ledger complete, no session-table leak.
cargo test -q --offline -p secmed-client --test soak_smoke
echo "soak smoke: 8 concurrent loopback sessions ok"

# The metrics registry and span-profile aggregation, run by name: the
# deterministic/timing class split and the self-time invariant are what
# keep RunReports reproducible while still carrying metrics.
cargo test -q --offline -p secmed-obs metrics::
cargo test -q --offline -p secmed-obs profile::
cargo test -q --offline -p secmed-obs trajectory::
cargo test -q --offline -p secmed-core --test observability

# The planner layer, run by name: SQL multi-join analysis and eval edge
# cases (relalg), join-order/protocol choice under leakage budgets
# (secmed-plan), and the end-to-end plan execution suite — determinism
# across thread counts, the budget flip, and the per-node §6
# predicted-vs-observed divergence gate.
cargo test -q --offline -p relalg --test algebra_edges
cargo test -q --offline -p secmed-plan
cargo test -q --offline -p secmed-core --test plan_exec
echo "planner: relalg edges + plan unit suite + 3-way plan execution ok"

# The BENCH_*.json gate in smoke mode: emit a fresh core trajectory and
# validate schema + required series (full baseline compare is manual:
# scripts/bench_check.sh full).
scripts/bench_check.sh
echo "bench gate: BENCH_core.json schema + series presence ok"

# The analyzer's own suite, run by name so a filter change can never
# silently drop it: fixture-pair rule tests (including the multi-hop
# secret-flow regression the old token rule missed), the JSONL report
# round-trip, and the in-process workspace self-scan + baseline gate.
cargo test -q --offline -p secmed-lint --test rules
cargo test -q --offline -p secmed-lint --test report
cargo test -q --offline -p secmed-lint --test selftest

# Static analysis: the in-tree lint ratchets findings against the
# committed lint-baseline.json — new findings fail, stale entries fail,
# `cargo run -p secmed-lint -- . --bless-baseline` regenerates.  On
# failure, surface the machine-readable report and per-rule counts for
# the CI log/artifacts before propagating the exit status.
if ! cargo run -q -p secmed-lint --offline; then
  echo "--- target/obs/lint.jsonl ---"
  cat target/obs/lint.jsonl 2>/dev/null || echo "(no lint report written)"
  echo "--- rule counts ---"
  tail -n 1 target/obs/lint.jsonl 2>/dev/null \
    | sed -n 's/.*"by_rule":{\([^}]*\)}.*/\1/p' | tr ',' '\n'
  exit 1
fi
cargo clippy --workspace --all-targets --offline -- -D warnings
