#!/usr/bin/env bash
# Tier-1 gate: everything must pass offline against an empty registry.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo fmt --check
