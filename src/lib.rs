#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `secmed` — umbrella crate for the Secure Mediation of Join Queries
//! reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests have a single dependency:
//!
//! * [`mpint`] — big integers,
//! * [`crypto`] — the cryptographic primitives,
//! * [`relalg`] — the relational-algebra engine,
//! * [`das`] — Database-as-a-Service bucketization,
//! * [`core`] — the Multimedia Mediator and the three JOIN protocols,
//! * [`plan`] — the cost- and leakage-aware query planner over the three
//!   protocols,
//! * [`pool`] — the deterministic fork-join thread pool behind
//!   [`core::ExecPolicy`],
//! * [`obs`] — structured tracing, unified run reports, and the bench
//!   harness.
//!
//! See `README.md` for a guided tour and `examples/quickstart.rs` for a
//! complete end-to-end run.

pub use mpint;
pub use relalg;
pub use secmed_core as core;
pub use secmed_crypto as crypto;
pub use secmed_das as das;
pub use secmed_obs as obs;
pub use secmed_plan as plan;
pub use secmed_pool as pool;
