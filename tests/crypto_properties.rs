//! Property-based tests on the cryptographic invariants the protocols
//! rest on, driven through the public API of the umbrella crate.

use proptest::prelude::*;
use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::hybrid::HybridKeyPair;
use secmed::crypto::paillier::Paillier;
use secmed::crypto::polynomial::{BucketedPoly, ZnPoly};
use secmed::crypto::{HmacDrbg, SraCipher, SraDomain};
use secmed::mpint::Natural;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hybrid_roundtrip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
        let ct = kp.public().encrypt(&payload, &mut rng);
        prop_assert_eq!(kp.decrypt(&ct).unwrap(), payload);
    }

    #[test]
    fn sra_commutes_on_arbitrary_values(value in prop::collection::vec(any::<u8>(), 1..64), seed in any::<u64>()) {
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S256));
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        let h = domain.hash(&value);
        prop_assert_eq!(s1.encrypt(&s2.encrypt(&h)), s2.encrypt(&s1.encrypt(&h)));
        prop_assert_eq!(s1.decrypt(&s1.encrypt(&h)), h);
    }

    #[test]
    fn sra_equality_iff_same_value(a in prop::collection::vec(any::<u8>(), 1..32), b in prop::collection::vec(any::<u8>(), 1..32), seed in any::<u64>()) {
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S256));
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        let da = s1.encrypt(&s2.encrypt_value(&a));
        let db = s2.encrypt(&s1.encrypt_value(&b));
        prop_assert_eq!(da == db, a == b);
    }

    #[test]
    fn paillier_homomorphism_random_plaintexts(a in any::<u64>(), b in any::<u64>(), gamma in 1..1000u64, seed in any::<u64>()) {
        let kp = Paillier::test_keypair(256, "prop-paillier");
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let n = kp.public().n().clone();
        let ea = kp.public().encrypt(&Natural::from(a), &mut rng).unwrap();
        let eb = kp.public().encrypt(&Natural::from(b), &mut rng).unwrap();
        let sum = kp.decrypt(&kp.public().add(&ea, &eb));
        let expected_sum = (Natural::from(a) + Natural::from(b)).rem(&n);
        prop_assert_eq!(sum, expected_sum);
        let scaled = kp.decrypt(&kp.public().scale(&ea, &Natural::from(gamma)));
        let expected_scaled = (Natural::from(a) * Natural::from(gamma)).rem(&n);
        prop_assert_eq!(scaled, expected_scaled);
    }

    #[test]
    fn polynomial_vanishes_exactly_on_roots(roots in prop::collection::btree_set(1..10_000u64, 1..20), probe in 1..10_000u64) {
        let n = Natural::from(1_000_003u64);
        let root_nats: Vec<Natural> = roots.iter().map(|&r| Natural::from(r)).collect();
        let poly = ZnPoly::from_roots(&root_nats, &n);
        for r in &root_nats {
            prop_assert!(poly.eval(r).is_zero());
        }
        // Non-roots evaluate non-zero (the modulus is prime and all roots
        // are below it, so P(x) = Π(a_i - x) has no extra zeros).
        if !roots.contains(&probe) {
            prop_assert!(!poly.eval(&Natural::from(probe)).is_zero());
        }
    }

    #[test]
    fn bucketed_polynomial_agrees_with_flat_on_membership(roots in prop::collection::btree_set(1..10_000u64, 1..30), buckets in 1..8usize, probe in 1..10_000u64) {
        let n = Natural::from(1_000_003u64);
        let root_nats: Vec<Natural> = roots.iter().map(|&r| Natural::from(r)).collect();
        let bp = BucketedPoly::from_roots(&root_nats, &n, buckets);
        for r in &root_nats {
            prop_assert!(bp.eval(r).is_zero());
        }
        if !roots.contains(&probe) {
            // The dummy padding root is n-1, far above the probe range.
            prop_assert!(!bp.eval(&Natural::from(probe)).is_zero());
        }
    }

    #[test]
    fn drbg_streams_never_repeat_across_seeds(s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let mut a = HmacDrbg::new(&s1.to_be_bytes());
        let mut b = HmacDrbg::new(&s2.to_be_bytes());
        let mut buf_a = [0u8; 32];
        let mut buf_b = [0u8; 32];
        a.fill(&mut buf_a);
        b.fill(&mut buf_b);
        prop_assert_ne!(buf_a, buf_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn protocols_agree_with_plaintext_join_on_random_workloads(
        left_rows in 1..20usize,
        right_rows in 1..20usize,
        shared in 0..8usize,
        seed in any::<u32>(),
    ) {
        use secmed::core::workload::WorkloadSpec;
        use secmed::core::{CommutativeConfig, ProtocolKind, Scenario};
        let w = WorkloadSpec {
            left_rows,
            right_rows,
            left_domain: shared + 8,
            right_domain: shared + 8,
            shared_values: shared,
            payload_attrs: 1,
            seed: format!("prop-{seed}"),
            ..Default::default()
        }
        .generate();
        let mut sc = Scenario::from_workload(&w, &format!("prop-{seed}"), 512);
        let report = sc.run(ProtocolKind::Commutative(CommutativeConfig::default())).unwrap();
        prop_assert_eq!(report.result.len(), w.expected_join_size);
    }
}
