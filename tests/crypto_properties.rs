//! Property-based tests on the cryptographic invariants the protocols
//! rest on, driven through the public API of the umbrella crate.

use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::hybrid::HybridKeyPair;
use secmed::crypto::paillier::Paillier;
use secmed::crypto::polynomial::{BucketedPoly, ZnPoly};
use secmed::crypto::{HmacDrbg, SraCipher, SraDomain};
use secmed::mpint::Natural;
use secmed_testkit::{cases, Gen};

/// Case counts matching the reduced configurations the suite ran under its
/// previous property-testing framework.
const CRYPTO_CASES: u64 = 16;
const E2E_CASES: u64 = 8;

/// A set of `1..max_size` distinct values in `[1, 10_000)`.
fn distinct_values(g: &mut Gen, max_size: usize) -> std::collections::BTreeSet<u64> {
    let target = g.usize_in(1, max_size - 1);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < target {
        set.insert(1 + g.u64_below(9_999));
    }
    set
}

#[test]
fn hybrid_roundtrip_any_payload() {
    cases(CRYPTO_CASES, "hybrid_roundtrip_any_payload", |g| {
        let payload = g.bytes_in(0, 511);
        let seed = g.u64();
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let kp = HybridKeyPair::generate(SafePrimeGroup::preset(GroupSize::S256), &mut rng);
        let ct = kp.public().encrypt(&payload, &mut rng);
        assert_eq!(kp.decrypt(&ct).unwrap(), payload);
    });
}

#[test]
fn sra_commutes_on_arbitrary_values() {
    cases(CRYPTO_CASES, "sra_commutes_on_arbitrary_values", |g| {
        let value = g.bytes_in(1, 63);
        let seed = g.u64();
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S256));
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        let h = domain.hash(&value);
        assert_eq!(s1.encrypt(&s2.encrypt(&h)), s2.encrypt(&s1.encrypt(&h)));
        assert_eq!(s1.decrypt(&s1.encrypt(&h)), h);
    });
}

#[test]
fn sra_equality_iff_same_value() {
    cases(CRYPTO_CASES, "sra_equality_iff_same_value", |g| {
        let a = g.bytes_in(1, 31);
        let b = g.bytes_in(1, 31);
        let seed = g.u64();
        let mut rng = HmacDrbg::new(&seed.to_be_bytes());
        let domain = SraDomain::new(SafePrimeGroup::preset(GroupSize::S256));
        let s1 = SraCipher::generate(domain.clone(), &mut rng);
        let s2 = SraCipher::generate(domain.clone(), &mut rng);
        let da = s1.encrypt(&s2.encrypt_value(&a));
        let db = s2.encrypt(&s1.encrypt_value(&b));
        assert_eq!(da == db, a == b);
    });
}

#[test]
fn paillier_homomorphism_random_plaintexts() {
    cases(
        CRYPTO_CASES,
        "paillier_homomorphism_random_plaintexts",
        |g| {
            let a = g.u64();
            let b = g.u64();
            let gamma = 1 + g.u64_below(999);
            let seed = g.u64();
            let kp = Paillier::test_keypair(256, "prop-paillier");
            let mut rng = HmacDrbg::new(&seed.to_be_bytes());
            let n = kp.public().n().clone();
            let ea = kp.public().encrypt(&Natural::from(a), &mut rng).unwrap();
            let eb = kp.public().encrypt(&Natural::from(b), &mut rng).unwrap();
            let sum = kp.decrypt(&kp.public().add(&ea, &eb));
            let expected_sum = (Natural::from(a) + Natural::from(b)).rem(&n);
            assert_eq!(sum, expected_sum);
            let scaled = kp.decrypt(&kp.public().scale(&ea, &Natural::from(gamma)));
            let expected_scaled = (Natural::from(a) * Natural::from(gamma)).rem(&n);
            assert_eq!(scaled, expected_scaled);
        },
    );
}

#[test]
fn polynomial_vanishes_exactly_on_roots() {
    cases(CRYPTO_CASES, "polynomial_vanishes_exactly_on_roots", |g| {
        let roots = distinct_values(g, 20);
        let probe = 1 + g.u64_below(9_999);
        let n = Natural::from(1_000_003u64);
        let root_nats: Vec<Natural> = roots.iter().map(|&r| Natural::from(r)).collect();
        let poly = ZnPoly::from_roots(&root_nats, &n);
        for r in &root_nats {
            assert!(poly.eval(r).is_zero());
        }
        // Non-roots evaluate non-zero (the modulus is prime and all roots
        // are below it, so P(x) = Π(a_i - x) has no extra zeros).
        if !roots.contains(&probe) {
            assert!(!poly.eval(&Natural::from(probe)).is_zero());
        }
    });
}

#[test]
fn bucketed_polynomial_agrees_with_flat_on_membership() {
    cases(
        CRYPTO_CASES,
        "bucketed_polynomial_agrees_with_flat_on_membership",
        |g| {
            let roots = distinct_values(g, 30);
            let buckets = g.usize_in(1, 7);
            let probe = 1 + g.u64_below(9_999);
            let n = Natural::from(1_000_003u64);
            let root_nats: Vec<Natural> = roots.iter().map(|&r| Natural::from(r)).collect();
            let bp = BucketedPoly::from_roots(&root_nats, &n, buckets);
            for r in &root_nats {
                assert!(bp.eval(r).is_zero());
            }
            if !roots.contains(&probe) {
                // The dummy padding root is n-1, far above the probe range.
                assert!(!bp.eval(&Natural::from(probe)).is_zero());
            }
        },
    );
}

#[test]
fn drbg_streams_never_repeat_across_seeds() {
    cases(
        CRYPTO_CASES,
        "drbg_streams_never_repeat_across_seeds",
        |g| {
            let s1 = g.u64();
            let s2 = g.u64();
            if s1 == s2 {
                return;
            }
            let mut a = HmacDrbg::new(&s1.to_be_bytes());
            let mut b = HmacDrbg::new(&s2.to_be_bytes());
            let mut buf_a = [0u8; 32];
            let mut buf_b = [0u8; 32];
            a.fill(&mut buf_a);
            b.fill(&mut buf_b);
            assert_ne!(buf_a, buf_b);
        },
    );
}

#[test]
fn protocols_agree_with_plaintext_join_on_random_workloads() {
    cases(
        E2E_CASES,
        "protocols_agree_with_plaintext_join_on_random_workloads",
        |g| {
            use secmed::core::workload::WorkloadSpec;
            use secmed::core::{CommutativeConfig, Engine, RunOptions, ScenarioBuilder};
            let left_rows = g.usize_in(1, 19);
            let right_rows = g.usize_in(1, 19);
            let shared = g.usize_in(0, 7);
            let seed = g.u32();
            let w = WorkloadSpec {
                left_rows,
                right_rows,
                left_domain: shared + 8,
                right_domain: shared + 8,
                shared_values: shared,
                payload_attrs: 1,
                seed: format!("prop-{seed}"),
                ..Default::default()
            }
            .generate();
            let mut sc = ScenarioBuilder::new(&w)
                .seed(&format!("prop-{seed}"))
                .paillier_bits(512)
                .build();
            let report = Engine::run(
                &mut sc,
                &RunOptions::commutative(CommutativeConfig::default()),
            )
            .unwrap();
            assert_eq!(report.result.len(), w.expected_join_size);
        },
    );
}
