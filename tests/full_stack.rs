//! Cross-crate integration tests: SQL text in, verified ciphertext-mediated
//! join out, exercising every layer of the stack together.

use secmed::core::hierarchy::{chained_join, SourceSpec};
use secmed::core::workload::small_workload;
use secmed::core::{
    AccessPolicy, AccessRule, CertificationAuthority, Client, CommutativeConfig, DasConfig,
    DataSource, Engine, MedError, Mediator, PmConfig, Property, ProtocolKind, RunOptions, Scenario,
    ScenarioBuilder,
};
use secmed::crypto::group::{GroupSize, SafePrimeGroup};
use secmed::crypto::HmacDrbg;
use secmed::relalg::{Predicate, Relation, Schema, Type, Value};

fn group() -> SafePrimeGroup {
    SafePrimeGroup::preset(GroupSize::S512)
}

fn fixture(seed: &str, left_policy: AccessPolicy, right_policy: AccessPolicy) -> Scenario {
    let mut rng = HmacDrbg::from_label(&format!("{seed}/ca"));
    let ca = CertificationAuthority::new(group(), &mut rng);
    let client = Client::setup(
        &ca,
        vec![
            Property::new("role", "auditor"),
            Property::new("dept", "claims"),
        ],
        group(),
        768,
        &format!("{seed}/client"),
    );
    let employees = Relation::build(
        Schema::new(&[
            ("eid", Type::Int),
            ("name", Type::Str),
            ("level", Type::Int),
        ]),
        vec![
            vec![Value::Int(1), Value::from("ada"), Value::Int(3)],
            vec![Value::Int(2), Value::from("grace"), Value::Int(5)],
            vec![Value::Int(3), Value::from("alan"), Value::Int(7)],
        ],
    )
    .unwrap();
    let salaries = Relation::build(
        Schema::new(&[("eid", Type::Int), ("salary", Type::Int)]),
        vec![
            vec![Value::Int(1), Value::Int(60_000)],
            vec![Value::Int(2), Value::Int(90_000)],
            vec![Value::Int(4), Value::Int(10_000)],
        ],
    )
    .unwrap();
    let left = DataSource::new("employees", employees, left_policy, ca.public_key().clone());
    let right = DataSource::new("salaries", salaries, right_policy, ca.public_key().clone());
    let mediator = Mediator::new(&[&left, &right]);
    Scenario {
        client,
        mediator,
        left,
        right,
        query: "select * from employees natural join salaries".to_string(),
    }
}

#[test]
fn sql_to_ciphertext_join_full_stack() {
    let mut sc = fixture(
        "fullstack",
        AccessPolicy::allow_all(),
        AccessPolicy::allow_all(),
    );
    for kind in [
        ProtocolKind::Das(DasConfig::default()),
        ProtocolKind::Commutative(CommutativeConfig::default()),
        ProtocolKind::Pm(PmConfig::default()),
    ] {
        let report = Engine::run(&mut sc, &RunOptions::new(kind)).unwrap();
        assert_eq!(report.result.len(), 2);
        assert_eq!(
            report.result.schema().attr_names(),
            vec!["eid", "name", "level", "salary"]
        );
    }
}

#[test]
fn access_denied_stops_the_protocol_before_data_moves() {
    let deny = AccessPolicy::new(vec![AccessRule::full_access(vec![Property::new(
        "role",
        "superadmin",
    )])]);
    let mut sc = fixture("denied", deny, AccessPolicy::allow_all());
    let err = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    );
    assert!(matches!(err, Err(MedError::AccessDenied(_))));
}

#[test]
fn row_filters_shape_the_join_result() {
    // The employees source only reveals rows with level <= 5 to auditors.
    let filtered = AccessPolicy::new(vec![AccessRule::filtered(
        vec![Property::new("role", "auditor")],
        Predicate::Le(
            secmed::relalg::Operand::col("level"),
            secmed::relalg::Operand::lit(5i64),
        ),
    )]);
    let mut sc = fixture("rowfilter", filtered, AccessPolicy::allow_all());
    let report = Engine::run(&mut sc, &RunOptions::pm(PmConfig::default())).unwrap();
    // alan (level 7) is filtered at the source; only ada and grace join.
    assert_eq!(report.result.len(), 2);
    for t in report.result.tuples() {
        assert_ne!(t.at(1), &Value::from("alan"));
    }
}

#[test]
fn projection_and_selection_compose_with_encryption() {
    let mut sc = fixture(
        "project",
        AccessPolicy::allow_all(),
        AccessPolicy::allow_all(),
    );
    sc.query =
        "select name from employees, salaries where employees.eid = salaries.eid and salary < 70000"
            .to_string();
    let report = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert_eq!(report.result.schema().attr_names(), vec!["name"]);
    assert_eq!(report.result.len(), 1);
    assert_eq!(report.result.tuples()[0].at(0), &Value::from("ada"));
}

#[test]
fn hierarchy_chains_two_mediations() {
    let mut rng = HmacDrbg::from_label("chain/ca");
    let ca = CertificationAuthority::new(group(), &mut rng);
    let template = || {
        Client::setup(
            &ca,
            vec![Property::new("role", "x")],
            group(),
            768,
            "chain/client",
        )
    };
    let r = |rows: Vec<Vec<Value>>, attrs: &[(&str, Type)]| {
        Relation::build(Schema::new(attrs), rows).unwrap()
    };
    let a = r(
        vec![
            vec![Value::Int(1), Value::from("x")],
            vec![Value::Int(2), Value::from("y")],
        ],
        &[("k", Type::Int), ("a", Type::Str)],
    );
    let b = r(
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ],
        &[("k", Type::Int), ("b", Type::Int)],
    );
    let c = r(
        vec![vec![Value::Int(10), Value::from("deep")]],
        &[("b", Type::Int), ("c", Type::Str)],
    );
    let report = chained_join(
        &ca,
        template,
        SourceSpec {
            name: "a".into(),
            relation: a.clone(),
            policy: AccessPolicy::allow_all(),
        },
        SourceSpec {
            name: "b".into(),
            relation: b.clone(),
            policy: AccessPolicy::allow_all(),
        },
        SourceSpec {
            name: "c".into(),
            relation: c.clone(),
            policy: AccessPolicy::allow_all(),
        },
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    let reference = a.natural_join(&b).unwrap().natural_join(&c).unwrap();
    assert_eq!(report.result.sorted(), reference.sorted());
    assert_eq!(report.stages.len(), 2);
}

#[test]
fn hierarchy_works_with_all_three_protocols() {
    let mut rng = HmacDrbg::from_label("chain3/ca");
    let ca = CertificationAuthority::new(group(), &mut rng);
    let template = || {
        Client::setup(
            &ca,
            vec![Property::new("role", "x")],
            group(),
            768,
            "chain3/client",
        )
    };
    let r = |rows: Vec<Vec<Value>>, attrs: &[(&str, Type)]| {
        Relation::build(Schema::new(attrs), rows).unwrap()
    };
    let make = || {
        (
            r(
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                ],
                &[("k", Type::Int), ("a", Type::Int)],
            ),
            r(
                vec![
                    vec![Value::Int(1), Value::Int(7)],
                    vec![Value::Int(3), Value::Int(9)],
                ],
                &[("k", Type::Int), ("b", Type::Int)],
            ),
            r(
                vec![vec![Value::Int(7), Value::from("leaf")]],
                &[("b", Type::Int), ("c", Type::Str)],
            ),
        )
    };
    let (a, b, c) = make();
    let reference = a.natural_join(&b).unwrap().natural_join(&c).unwrap();
    for kind in [
        ProtocolKind::Das(DasConfig::default()),
        ProtocolKind::Commutative(CommutativeConfig::default()),
        ProtocolKind::Pm(PmConfig::default()),
    ] {
        let (a, b, c) = make();
        let report = chained_join(
            &ca,
            template,
            SourceSpec {
                name: "a".into(),
                relation: a,
                policy: AccessPolicy::allow_all(),
            },
            SourceSpec {
                name: "b".into(),
                relation: b,
                policy: AccessPolicy::allow_all(),
            },
            SourceSpec {
                name: "c".into(),
                relation: c,
                policy: AccessPolicy::allow_all(),
            },
            &RunOptions::new(kind),
        )
        .unwrap();
        assert_eq!(report.result.sorted(), reference.sorted(), "{kind:?}");
    }
}

#[test]
fn transport_log_shows_no_plaintext_sized_leaks_to_mediator() {
    // Weak heuristic sanity check: the mediator's received bytes in the
    // commutative protocol scale with ciphertext counts, and the client's
    // received bytes are no larger than the mediator's total traffic.
    let w = small_workload("leakcheck");
    let mut sc = ScenarioBuilder::new(&w)
        .seed("leakcheck")
        .paillier_bits(768)
        .build();
    let report = Engine::run(
        &mut sc,
        &RunOptions::commutative(CommutativeConfig::default()),
    )
    .unwrap();
    assert!(report.client_view.bytes_received <= report.transport.total_bytes());
    assert!(report.mediator_view.bytes_observed > 0);
}

#[test]
fn deterministic_scenarios_reproduce_identical_transcripts() {
    let w = small_workload("repro");
    let run = || {
        let mut sc = ScenarioBuilder::new(&w)
            .seed("repro")
            .paillier_bits(768)
            .build();
        let r = Engine::run(&mut sc, &RunOptions::pm(PmConfig::default())).unwrap();
        (r.result.sorted(), r.transport.total_bytes())
    };
    let (r1, b1) = run();
    let (r2, b2) = run();
    assert_eq!(r1, r2);
    assert_eq!(b1, b2, "same seeds must give byte-identical transcripts");
}
